//! The profiling stage of the StencilMART pipeline: for each stencil and
//! each valid OC, randomly sample parameter settings, "measure" each
//! (simulate + noise), and keep every instance plus the per-OC best
//! (paper §IV-A).

use crate::arch::GpuArch;
use crate::exec::simulate;
use crate::kernel::Crash;
use crate::noise::NoiseModel;
use crate::opts::OptCombo;
use crate::params::{ParamSetting, ParamSpace};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use stencilmart_obs::{self as obs, counters};
use stencilmart_stencil::pattern::StencilPattern;

/// Profiling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileConfig {
    /// Random parameter settings sampled per OC (the paper's random
    /// search budget).
    pub samples_per_oc: usize,
    /// Measurement noise applied to every sample.
    pub noise: NoiseModel,
    /// Base seed; per-(stencil, OC) streams are derived from it so results
    /// are deterministic regardless of thread scheduling.
    pub seed: u64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            samples_per_oc: 8,
            noise: NoiseModel::default(),
            seed: 0x5EED,
        }
    }
}

/// One measured (OC, parameter setting) instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceRecord {
    /// The optimization combination.
    pub oc: OptCombo,
    /// The sampled parameter setting.
    pub params: ParamSetting,
    /// Measured (simulated + noise) time for one sweep, in ms.
    pub time_ms: f64,
}

/// Profiling outcome for one OC on one stencil.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OcOutcome {
    /// The optimization combination.
    pub oc: OptCombo,
    /// All successfully measured instances.
    pub instances: Vec<InstanceRecord>,
    /// Crashes encountered during sampling, by reason.
    pub crashes: Vec<Crash>,
}

impl OcOutcome {
    /// The fastest measured instance, if any setting executed.
    pub fn best(&self) -> Option<&InstanceRecord> {
        self.instances
            .iter()
            .min_by(|a, b| a.time_ms.total_cmp(&b.time_ms))
    }

    /// Whether every sampled setting crashed (the paper notes such OCs
    /// "fail to be applied" for certain stencils).
    pub fn all_crashed(&self) -> bool {
        self.instances.is_empty()
    }
}

/// Full profiling result for one stencil on one GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StencilProfile {
    /// Per-OC outcomes, in [`OptCombo::enumerate`] order.
    pub per_oc: Vec<OcOutcome>,
}

impl StencilProfile {
    /// The OC with the fastest best instance.
    pub fn best_oc(&self) -> Option<&OcOutcome> {
        self.per_oc
            .iter()
            .filter(|o| !o.all_crashed())
            .min_by(|a, b| {
                a.best()
                    .unwrap()
                    .time_ms
                    .total_cmp(&b.best().unwrap().time_ms)
            })
    }

    /// Best achievable time over all OCs (ms).
    pub fn best_time_ms(&self) -> Option<f64> {
        self.best_oc().map(|o| o.best().unwrap().time_ms)
    }

    /// Worst per-OC best time over OCs that executed (ms). The Fig. 1 gap
    /// is `worst / best`.
    pub fn worst_best_time_ms(&self) -> Option<f64> {
        self.per_oc
            .iter()
            .filter_map(|o| o.best().map(|b| b.time_ms))
            .max_by(f64::total_cmp)
    }

    /// Best time for a specific OC (ms).
    pub fn time_for(&self, oc: &OptCombo) -> Option<f64> {
        self.per_oc
            .iter()
            .find(|o| &o.oc == oc)
            .and_then(|o| o.best().map(|b| b.time_ms))
    }

    /// All instances across OCs.
    pub fn all_instances(&self) -> impl Iterator<Item = &InstanceRecord> {
        self.per_oc.iter().flat_map(|o| o.instances.iter())
    }
}

fn derive_seed(base: u64, stencil_idx: u64, oc_idx: u64) -> u64 {
    // SplitMix64-style mixing for independent per-cell streams.
    let mut z = base
        .wrapping_add(stencil_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(oc_idx.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Profile one stencil under every valid OC.
///
/// `stencil_idx` keys the deterministic per-stencil random stream; pass
/// the stencil's position in its corpus.
pub fn profile_stencil(
    pattern: &StencilPattern,
    grid: usize,
    arch: &GpuArch,
    cfg: &ProfileConfig,
    stencil_idx: u64,
) -> StencilProfile {
    let per_oc: Vec<OcOutcome> = OptCombo::enumerate()
        .into_iter()
        .enumerate()
        .map(|(oc_idx, oc)| {
            let mut rng =
                ChaCha8Rng::seed_from_u64(derive_seed(cfg.seed, stencil_idx, oc_idx as u64));
            let space = ParamSpace::new(oc, pattern.dim());
            let mut instances = Vec::new();
            let mut crashes = Vec::new();
            for params in space.sample_many(&mut rng, cfg.samples_per_oc) {
                match simulate(pattern, grid, &oc, &params, arch) {
                    Ok(t) => instances.push(InstanceRecord {
                        oc,
                        params,
                        time_ms: cfg.noise.apply(t, &mut rng),
                    }),
                    Err(c) => crashes.push(c),
                }
            }
            OcOutcome {
                oc,
                instances,
                crashes,
            }
        })
        .collect();
    counters::STENCILS_PROFILED.inc();
    counters::OC_INSTANCES_SIMULATED.add(per_oc.iter().map(|o| o.instances.len() as u64).sum());
    counters::CRASHES_OBSERVED.add(per_oc.iter().map(|o| o.crashes.len() as u64).sum());
    StencilProfile { per_oc }
}

/// Profile a corpus of stencils in parallel (scoped threads, one chunk
/// per worker). Results are deterministic and ordered to match the input
/// corpus.
///
/// The worker count comes from the pipeline-wide resolution in
/// [`stencilmart_obs::runtime::worker_count`], so `STENCILMART_THREADS`
/// governs this pool exactly like the ML thread pools.
pub fn profile_corpus(
    patterns: &[StencilPattern],
    grid: usize,
    arch: &GpuArch,
    cfg: &ProfileConfig,
) -> Vec<StencilProfile> {
    let _span = obs::span("profile_corpus");
    let workers = obs::runtime::worker_count().min(patterns.len().max(1));
    counters::WORKER_POOL_SIZE.set(workers as u64);
    if workers <= 1 || patterns.len() < 4 {
        return patterns
            .iter()
            .enumerate()
            .map(|(i, p)| profile_stencil(p, grid, arch, cfg, i as u64))
            .collect();
    }
    let mut results: Vec<Option<StencilProfile>> = vec![None; patterns.len()];
    let chunk = patterns.len().div_ceil(workers);
    std::thread::scope(|s| {
        for (wi, out_chunk) in results.chunks_mut(chunk).enumerate() {
            let start = wi * chunk;
            s.spawn(move || {
                for (j, slot) in out_chunk.iter_mut().enumerate() {
                    let idx = start + j;
                    *slot = Some(profile_stencil(&patterns[idx], grid, arch, cfg, idx as u64));
                }
            });
        }
    });
    results.into_iter().map(|r| r.expect("filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GpuId;
    use stencilmart_stencil::pattern::Dim;
    use stencilmart_stencil::shapes;

    fn v100() -> GpuArch {
        GpuArch::preset(GpuId::V100)
    }

    fn small_cfg() -> ProfileConfig {
        ProfileConfig {
            samples_per_oc: 4,
            noise: NoiseModel::none(),
            seed: 1,
        }
    }

    #[test]
    fn profile_covers_all_ocs() {
        let p = shapes::star(Dim::D2, 2);
        let prof = profile_stencil(&p, 8192, &v100(), &small_cfg(), 0);
        assert_eq!(prof.per_oc.len(), 30);
        assert!(prof.best_oc().is_some());
        assert!(prof.best_time_ms().unwrap() > 0.0);
    }

    #[test]
    fn best_is_not_worse_than_any_instance() {
        let p = shapes::box_(Dim::D2, 2);
        let prof = profile_stencil(&p, 8192, &v100(), &small_cfg(), 0);
        let best = prof.best_time_ms().unwrap();
        for inst in prof.all_instances() {
            assert!(best <= inst.time_ms + 1e-12);
        }
    }

    #[test]
    fn tb_without_streaming_crashes_for_3d_order4() {
        let p = shapes::box_(Dim::D3, 4);
        let prof = profile_stencil(&p, 512, &v100(), &small_cfg(), 0);
        let tb = OptCombo::parse("TB").unwrap();
        let outcome = prof.per_oc.iter().find(|o| o.oc == tb).unwrap();
        assert!(outcome.all_crashed(), "TB alone must crash for box3d4r");
        // The gap still computes over surviving OCs.
        assert!(prof.worst_best_time_ms().unwrap() >= prof.best_time_ms().unwrap());
    }

    #[test]
    fn profiling_is_deterministic() {
        let p = shapes::cross(Dim::D2, 3);
        let a = profile_stencil(&p, 8192, &v100(), &small_cfg(), 7);
        let b = profile_stencil(&p, 8192, &v100(), &small_cfg(), 7);
        assert_eq!(a, b);
        let c = profile_stencil(&p, 8192, &v100(), &small_cfg(), 8);
        assert_ne!(a, c, "different stencil index must give a new stream");
    }

    #[test]
    fn corpus_profiling_matches_sequential() {
        let patterns: Vec<_> = (1..=4u8)
            .map(|r| shapes::star(Dim::D2, r))
            .chain((1..=4u8).map(|r| shapes::box_(Dim::D2, r)))
            .collect();
        let cfg = small_cfg();
        let par = profile_corpus(&patterns, 8192, &v100(), &cfg);
        let seq: Vec<_> = patterns
            .iter()
            .enumerate()
            .map(|(i, p)| profile_stencil(p, 8192, &v100(), &cfg, i as u64))
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn streaming_ocs_usually_win() {
        // Paper Fig. 2: OCs with streaming perform better for most
        // stencils.
        let mut st_wins = 0;
        let mut total = 0;
        for r in 1..=4u8 {
            for dim in [Dim::D2, Dim::D3] {
                let grid = if dim == Dim::D2 { 8192 } else { 512 };
                for shape in shapes::Shape::ALL {
                    let p = shapes::build(shape, dim, r);
                    let prof = profile_stencil(&p, grid, &v100(), &small_cfg(), total);
                    if prof.best_oc().unwrap().oc.st {
                        st_wins += 1;
                    }
                    total += 1;
                }
            }
        }
        assert!(
            st_wins as f64 >= 0.6 * total as f64,
            "streaming won only {st_wins}/{total}"
        );
    }
}

//! A csTuner-style genetic-algorithm parameter tuner (paper §II-C cites
//! the authors' csTuner, which "re-designs the genetic algorithm with
//! approximation to reduce the search time").
//!
//! StencilMART's pipeline uses plain random search; this tuner is the
//! stronger alternative a downstream user would plug in once the OC has
//! been predicted: it evolves parameter settings for a *fixed* OC under a
//! bounded evaluation budget.

use crate::arch::GpuArch;
use crate::exec::simulate_with;
use crate::kernel::PatternAnalysis;
use crate::opts::OptCombo;
use crate::params::{ParamSetting, ParamSpace};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use stencilmart_stencil::pattern::StencilPattern;

/// Genetic-algorithm configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-field mutation probability.
    pub mutation_rate: f64,
    /// Individuals carried over unchanged each generation.
    pub elite: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 12,
            generations: 6,
            mutation_rate: 0.25,
            elite: 2,
            seed: 0,
        }
    }
}

impl GaConfig {
    /// Total simulator evaluations this configuration may spend.
    pub fn budget(&self) -> usize {
        self.population * self.generations
    }
}

/// Result of a tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneResult {
    /// The best setting found.
    pub params: ParamSetting,
    /// Its simulated time (ms).
    pub time_ms: f64,
    /// Simulator evaluations spent.
    pub evaluations: usize,
}

/// Field-wise uniform crossover of two settings.
fn crossover<R: Rng>(a: &ParamSetting, b: &ParamSetting, rng: &mut R) -> ParamSetting {
    fn pick<T, R: Rng>(x: T, y: T, rng: &mut R) -> T {
        if rng.gen_bool(0.5) {
            x
        } else {
            y
        }
    }
    ParamSetting {
        block_x: pick(a.block_x, b.block_x, rng),
        block_y: pick(a.block_y, b.block_y, rng),
        merge_factor: pick(a.merge_factor, b.merge_factor, rng),
        merge_dim: pick(a.merge_dim, b.merge_dim, rng),
        stream_tile: pick(a.stream_tile, b.stream_tile, rng),
        time_tile: pick(a.time_tile, b.time_tile, rng),
        unroll: pick(a.unroll, b.unroll, rng),
        use_smem: pick(a.use_smem, b.use_smem, rng),
    }
}

/// Mutate by re-sampling individual fields from a fresh random setting.
fn mutate<R: Rng>(s: &ParamSetting, space: &ParamSpace, rate: f64, rng: &mut R) -> ParamSetting {
    let fresh = space.sample(rng);
    let mut out = *s;
    if rng.gen_bool(rate) {
        out.block_x = fresh.block_x;
    }
    if rng.gen_bool(rate) {
        out.block_y = fresh.block_y;
    }
    if rng.gen_bool(rate) {
        out.merge_factor = fresh.merge_factor;
    }
    if rng.gen_bool(rate) {
        out.merge_dim = fresh.merge_dim;
    }
    if rng.gen_bool(rate) {
        out.stream_tile = fresh.stream_tile;
    }
    if rng.gen_bool(rate) {
        out.time_tile = fresh.time_tile;
    }
    if rng.gen_bool(rate) {
        out.unroll = fresh.unroll;
    }
    if rng.gen_bool(rate) {
        out.use_smem = fresh.use_smem;
    }
    out
}

/// Tune the parameters of one OC with a genetic algorithm. Returns `None`
/// if every evaluated setting crashed.
pub fn tune_ga(
    pattern: &StencilPattern,
    grid: usize,
    oc: &OptCombo,
    arch: &GpuArch,
    cfg: &GaConfig,
) -> Option<TuneResult> {
    assert!(cfg.population >= 2, "population must be at least 2");
    assert!(
        cfg.elite < cfg.population,
        "elite must leave room for offspring"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    // Pattern quantities are fixed for the whole search; analyze once.
    let analysis = PatternAnalysis::new(pattern);
    let space = ParamSpace::new(*oc, pattern.dim());
    let mut evals = 0usize;
    let fitness = |s: &ParamSetting, evals: &mut usize| -> f64 {
        *evals += 1;
        simulate_with(&analysis, grid, oc, s, arch).unwrap_or(f64::INFINITY)
    };

    // Initial population: random settings (the GA's "approximation" seeds
    // from the same space random search draws from).
    let mut pop: Vec<(ParamSetting, f64)> = (0..cfg.population)
        .map(|_| {
            let s = space.sample(&mut rng);
            let f = fitness(&s, &mut evals);
            (s, f)
        })
        .collect();
    pop.sort_by(|a, b| a.1.total_cmp(&b.1));

    for _gen in 1..cfg.generations {
        let mut next: Vec<(ParamSetting, f64)> = pop[..cfg.elite].to_vec();
        while next.len() < cfg.population {
            // Tournament selection of two parents from the top half.
            let half = &pop[..(cfg.population / 2).max(2)];
            let pa = half.choose(&mut rng).expect("non-empty").0;
            let pb = half.choose(&mut rng).expect("non-empty").0;
            let child = mutate(
                &crossover(&pa, &pb, &mut rng),
                &space,
                cfg.mutation_rate,
                &mut rng,
            );
            if !child.is_valid_for(oc, pattern.dim()) {
                continue; // crossover across constraints produced junk
            }
            let f = fitness(&child, &mut evals);
            next.push((child, f));
        }
        pop = next;
        pop.sort_by(|a, b| a.1.total_cmp(&b.1));
    }

    let (params, time_ms) = pop.into_iter().next().expect("population non-empty");
    time_ms.is_finite().then_some(TuneResult {
        params,
        time_ms,
        evaluations: evals,
    })
}

/// Random-search baseline with the same evaluation budget.
pub fn tune_random(
    pattern: &StencilPattern,
    grid: usize,
    oc: &OptCombo,
    arch: &GpuArch,
    budget: usize,
    seed: u64,
) -> Option<TuneResult> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let analysis = PatternAnalysis::new(pattern);
    let space = ParamSpace::new(*oc, pattern.dim());
    let mut best: Option<(ParamSetting, f64)> = None;
    for _ in 0..budget {
        let s = space.sample(&mut rng);
        if let Ok(t) = simulate_with(&analysis, grid, oc, &s, arch) {
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((s, t));
            }
        }
    }
    best.map(|(params, time_ms)| TuneResult {
        params,
        time_ms,
        evaluations: budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GpuId;
    use stencilmart_stencil::pattern::Dim;
    use stencilmart_stencil::shapes;

    #[test]
    fn ga_finds_a_runnable_setting() {
        let p = shapes::box_(Dim::D3, 2);
        let oc = OptCombo::parse("ST_RT").unwrap();
        let arch = GpuArch::preset(GpuId::V100);
        let res = tune_ga(&p, 512, &oc, &arch, &GaConfig::default()).expect("tunable");
        assert!(res.time_ms.is_finite() && res.time_ms > 0.0);
        assert!(res.params.is_valid_for(&oc, Dim::D3));
        assert!(res.evaluations <= GaConfig::default().budget() + 2);
    }

    #[test]
    fn ga_matches_or_beats_random_at_equal_budget() {
        // Averaged over several stencils/seeds, the GA should not lose to
        // random search with the same number of simulator calls.
        let arch = GpuArch::preset(GpuId::V100);
        let oc = OptCombo::parse("ST_BM_TB").unwrap();
        let cfg = GaConfig {
            population: 10,
            generations: 5,
            ..GaConfig::default()
        };
        let mut ga_wins = 0usize;
        let mut total = 0usize;
        for (i, r) in (1..=4u8).enumerate() {
            let p = shapes::cross(Dim::D3, r);
            let ga = tune_ga(
                &p,
                512,
                &oc,
                &arch,
                &GaConfig {
                    seed: i as u64,
                    ..cfg
                },
            );
            let rnd = tune_random(&p, 512, &oc, &arch, cfg.budget(), i as u64);
            if let (Some(g), Some(n)) = (ga, rnd) {
                total += 1;
                if g.time_ms <= n.time_ms * 1.02 {
                    ga_wins += 1;
                }
            }
        }
        assert!(total >= 3, "most runs must produce settings");
        assert!(ga_wins * 2 >= total, "GA lost too often: {ga_wins}/{total}");
    }

    #[test]
    fn hopeless_oc_returns_none() {
        // TB without ST for box3d4r crashes for every sampled setting.
        let p = shapes::box_(Dim::D3, 4);
        let oc = OptCombo::parse("TB").unwrap();
        let arch = GpuArch::preset(GpuId::P100);
        assert!(tune_ga(&p, 512, &oc, &arch, &GaConfig::default()).is_none());
        assert!(tune_random(&p, 512, &oc, &arch, 30, 0).is_none());
    }

    #[test]
    fn tuning_is_deterministic() {
        let p = shapes::star(Dim::D2, 3);
        let oc = OptCombo::parse("ST").unwrap();
        let arch = GpuArch::preset(GpuId::A100);
        let a = tune_ga(&p, 8192, &oc, &arch, &GaConfig::default());
        let b = tune_ga(&p, 8192, &oc, &arch, &GaConfig::default());
        assert_eq!(a, b);
    }
}

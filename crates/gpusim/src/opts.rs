//! The six stencil optimizations and their valid combinations (paper
//! Table I).
//!
//! | No. | Optimization      | Abbrev. | Constraint                    |
//! |-----|-------------------|---------|-------------------------------|
//! | 1   | Streaming         | ST      | —                             |
//! | 2   | Block merging     | BM      | not valid with CM             |
//! | 3   | Cyclic merging    | CM      | not valid with BM             |
//! | 4   | Retiming          | RT      | only valid with ST            |
//! | 5   | Prefetching       | PR      | only valid with ST            |
//! | 6   | Temporal blocking | TB      | —                             |
//!
//! Under these constraints exactly 30 optimization combinations (OCs)
//! exist: merging ∈ {none, BM, CM} × TB ∈ {off, on} × (ST off → 6, ST on
//! with RT × PR → 24).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An individual optimization technique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opt {
    /// Streaming (2.5-D spatial blocking along one dimension).
    Streaming,
    /// Block merging: each thread computes several adjacent outputs.
    BlockMerging,
    /// Cyclic merging: each thread computes several strided outputs.
    CyclicMerging,
    /// Retiming: decompose into accumulating sub-computations.
    Retiming,
    /// Prefetching: overlap next-plane loads with current compute.
    Prefetching,
    /// Temporal blocking: fuse several time steps.
    TemporalBlocking,
}

impl Opt {
    /// Paper abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            Opt::Streaming => "ST",
            Opt::BlockMerging => "BM",
            Opt::CyclicMerging => "CM",
            Opt::Retiming => "RT",
            Opt::Prefetching => "PR",
            Opt::TemporalBlocking => "TB",
        }
    }

    /// All optimizations in Table I order.
    pub const ALL: [Opt; 6] = [
        Opt::Streaming,
        Opt::BlockMerging,
        Opt::CyclicMerging,
        Opt::Retiming,
        Opt::Prefetching,
        Opt::TemporalBlocking,
    ];
}

/// Merging strategy (BM and CM are mutually exclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Merge {
    /// No merging: one thread per output point.
    None,
    /// Block merging of adjacent points.
    Block,
    /// Cyclic merging of strided points.
    Cyclic,
}

impl Merge {
    /// All merging strategies.
    pub const ALL: [Merge; 3] = [Merge::None, Merge::Block, Merge::Cyclic];
}

/// An optimization combination (OC): a valid selection of the six
/// optimizations of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OptCombo {
    /// Streaming enabled.
    pub st: bool,
    /// Merging strategy.
    pub merge: Merge,
    /// Retiming enabled (requires `st`).
    pub rt: bool,
    /// Prefetching enabled (requires `st`).
    pub pr: bool,
    /// Temporal blocking enabled.
    pub tb: bool,
}

/// Why an [`OptCombo`] is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComboError {
    /// Retiming without streaming.
    RetimingRequiresStreaming,
    /// Prefetching without streaming.
    PrefetchingRequiresStreaming,
}

impl fmt::Display for ComboError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComboError::RetimingRequiresStreaming => {
                write!(f, "retiming is only valid when streaming is enabled")
            }
            ComboError::PrefetchingRequiresStreaming => {
                write!(f, "prefetching is only valid when streaming is enabled")
            }
        }
    }
}

impl std::error::Error for ComboError {}

impl OptCombo {
    /// The naive baseline: no optimizations.
    pub const BASE: OptCombo = OptCombo {
        st: false,
        merge: Merge::None,
        rt: false,
        pr: false,
        tb: false,
    };

    /// Build a combination, validating the Table I constraints.
    pub fn new(st: bool, merge: Merge, rt: bool, pr: bool, tb: bool) -> Result<Self, ComboError> {
        if rt && !st {
            return Err(ComboError::RetimingRequiresStreaming);
        }
        if pr && !st {
            return Err(ComboError::PrefetchingRequiresStreaming);
        }
        Ok(OptCombo {
            st,
            merge,
            rt,
            pr,
            tb,
        })
    }

    /// Whether the combination satisfies the Table I constraints.
    pub fn is_valid(&self) -> bool {
        self.st || (!self.rt && !self.pr)
    }

    /// Enumerate every valid OC (30 total), in a stable canonical order.
    pub fn enumerate() -> Vec<OptCombo> {
        let mut out = Vec::with_capacity(30);
        for &st in &[false, true] {
            for &merge in &Merge::ALL {
                let rts: &[bool] = if st { &[false, true] } else { &[false] };
                for &rt in rts {
                    let prs: &[bool] = if st { &[false, true] } else { &[false] };
                    for &pr in prs {
                        for &tb in &[false, true] {
                            out.push(OptCombo {
                                st,
                                merge,
                                rt,
                                pr,
                                tb,
                            });
                        }
                    }
                }
            }
        }
        debug_assert!(out.iter().all(OptCombo::is_valid));
        out
    }

    /// The enabled optimizations in Table I order.
    pub fn enabled(&self) -> Vec<Opt> {
        let mut v = Vec::new();
        if self.st {
            v.push(Opt::Streaming);
        }
        match self.merge {
            Merge::Block => v.push(Opt::BlockMerging),
            Merge::Cyclic => v.push(Opt::CyclicMerging),
            Merge::None => {}
        }
        if self.rt {
            v.push(Opt::Retiming);
        }
        if self.pr {
            v.push(Opt::Prefetching);
        }
        if self.tb {
            v.push(Opt::TemporalBlocking);
        }
        v
    }

    /// Canonical name, e.g. `ST_BM_RT` or `BASE` for the empty combination.
    pub fn name(&self) -> String {
        let opts = self.enabled();
        if opts.is_empty() {
            "BASE".to_string()
        } else {
            opts.iter()
                .map(|o| o.abbrev())
                .collect::<Vec<_>>()
                .join("_")
        }
    }

    /// Parse a canonical name back into a combination.
    pub fn parse(name: &str) -> Option<OptCombo> {
        if name == "BASE" {
            return Some(OptCombo::BASE);
        }
        let mut c = OptCombo::BASE;
        for part in name.split('_') {
            match part {
                "ST" => c.st = true,
                "BM" => {
                    if c.merge != Merge::None {
                        return None;
                    }
                    c.merge = Merge::Block;
                }
                "CM" => {
                    if c.merge != Merge::None {
                        return None;
                    }
                    c.merge = Merge::Cyclic;
                }
                "RT" => c.rt = true,
                "PR" => c.pr = true,
                "TB" => c.tb = true,
                _ => return None,
            }
        }
        c.is_valid().then_some(c)
    }

    /// Boolean feature encoding of the six Table I optimizations, in
    /// Table I order (`[ST, BM, CM, RT, PR, TB]`). Together with the
    /// parameter features this fully identifies the kernel configuration
    /// for the cross-architecture regressor.
    pub fn feature_vector(&self) -> [f64; 6] {
        [
            f64::from(self.st),
            f64::from(self.merge == Merge::Block),
            f64::from(self.merge == Merge::Cyclic),
            f64::from(self.rt),
            f64::from(self.pr),
            f64::from(self.tb),
        ]
    }

    /// Names of [`Self::feature_vector`] entries.
    pub fn feature_names() -> [&'static str; 6] {
        ["oc_st", "oc_bm", "oc_cm", "oc_rt", "oc_pr", "oc_tb"]
    }

    /// Index of this OC within [`Self::enumerate`].
    pub fn index(&self) -> usize {
        Self::enumerate()
            .iter()
            .position(|c| c == self)
            .expect("valid OC is in the enumeration")
    }
}

impl fmt::Display for OptCombo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_has_30_unique_valid_ocs() {
        let all = OptCombo::enumerate();
        assert_eq!(all.len(), 30);
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 30);
        assert!(all.iter().all(OptCombo::is_valid));
    }

    #[test]
    fn constraints_reject_rt_pr_without_st() {
        assert_eq!(
            OptCombo::new(false, Merge::None, true, false, false),
            Err(ComboError::RetimingRequiresStreaming)
        );
        assert_eq!(
            OptCombo::new(false, Merge::None, false, true, false),
            Err(ComboError::PrefetchingRequiresStreaming)
        );
        assert!(OptCombo::new(true, Merge::Block, true, true, true).is_ok());
    }

    #[test]
    fn names_roundtrip() {
        for c in OptCombo::enumerate() {
            assert_eq!(OptCombo::parse(&c.name()), Some(c), "{}", c.name());
        }
        assert_eq!(OptCombo::parse("BASE"), Some(OptCombo::BASE));
        assert_eq!(OptCombo::parse("BM_CM"), None);
        assert_eq!(OptCombo::parse("RT"), None);
        assert_eq!(OptCombo::parse("XX"), None);
    }

    #[test]
    fn name_format_matches_paper_style() {
        let c = OptCombo::new(true, Merge::Cyclic, false, false, true).unwrap();
        assert_eq!(c.name(), "ST_CM_TB");
        assert_eq!(OptCombo::BASE.name(), "BASE");
    }

    #[test]
    fn index_is_consistent() {
        for (i, c) in OptCombo::enumerate().iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn enabled_lists_table1_order() {
        let c = OptCombo::new(true, Merge::Block, true, true, true).unwrap();
        let abbrevs: Vec<_> = c.enabled().iter().map(|o| o.abbrev()).collect();
        assert_eq!(abbrevs, vec!["ST", "BM", "RT", "PR", "TB"]);
    }
}

//! Measurement-noise model: real GPU timings fluctuate with clock
//! boosting, TLB state, and scheduling. The profiler multiplies each
//! simulated time by a lognormal factor so the downstream ML task has the
//! same irreducible error a real testbed would exhibit.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Lognormal multiplicative noise with median 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Standard deviation of `ln(time)`. 0 disables noise.
    pub sigma: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        // ~6% typical run-to-run variation, in line with wall-clock GPU
        // benchmarking practice.
        NoiseModel { sigma: 0.06 }
    }
}

impl NoiseModel {
    /// A noise-free model.
    pub fn none() -> Self {
        NoiseModel { sigma: 0.0 }
    }

    /// A model with the given `ln`-space standard deviation.
    pub fn with_sigma(sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be >= 0");
        NoiseModel { sigma }
    }

    /// Apply one noise draw to a time.
    pub fn apply<R: Rng>(&self, time_ms: f64, rng: &mut R) -> f64 {
        if self.sigma == 0.0 {
            return time_ms;
        }
        // Box–Muller: two uniforms → one standard normal.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        time_ms * (self.sigma * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zero_sigma_is_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let n = NoiseModel::none();
        assert_eq!(n.apply(3.5, &mut rng), 3.5);
    }

    #[test]
    fn noise_is_centered_and_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = NoiseModel::with_sigma(0.06);
        let samples: Vec<f64> = (0..20_000).map(|_| n.apply(1.0, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        // Lognormal mean = exp(sigma^2/2) ≈ 1.0018.
        assert!((mean - 1.0).abs() < 0.01, "mean = {mean}");
        // ~4 sigma bounds.
        assert!(samples.iter().all(|&s| s > 0.75 && s < 1.35));
    }

    #[test]
    fn larger_sigma_spreads_more() {
        let spread = |sigma: f64| {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let n = NoiseModel::with_sigma(sigma);
            let s: Vec<f64> = (0..5000).map(|_| n.apply(1.0, &mut rng)).collect();
            let mean = s.iter().sum::<f64>() / s.len() as f64;
            (s.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / s.len() as f64).sqrt()
        };
        assert!(spread(0.2) > 2.0 * spread(0.05));
    }

    #[test]
    #[should_panic(expected = "sigma must be >= 0")]
    fn negative_sigma_panics() {
        NoiseModel::with_sigma(-0.1);
    }
}

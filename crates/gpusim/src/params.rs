//! OC parameter spaces: numeric (power-of-two), Boolean, and enumeration
//! parameters (paper §IV-E), plus random sampling and the log2 feature
//! encoding used as regressor input.

use crate::opts::{Merge, OptCombo};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use stencilmart_stencil::pattern::Dim;

/// A concrete parameter setting for one kernel instance.
///
/// Structural invariants (enforced by [`ParamSpace::sample`] and checked
/// by [`ParamSetting::is_valid_for`]):
/// * `merge_factor == 1` unless the OC merges,
/// * `merge_dim < rank`, and with streaming enabled the merged axis is not
///   the streaming axis,
/// * `time_tile == 1` unless the OC temporally blocks,
/// * `stream_tile` and `use_smem` are meaningful only with streaming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamSetting {
    /// Threads per block along the innermost axis (power of two).
    pub block_x: u32,
    /// Threads per block along the second axis (power of two).
    pub block_y: u32,
    /// Outputs merged per thread (power of two; 1 = no merging).
    pub merge_factor: u32,
    /// Axis along which outputs are merged (enumeration, 0 = innermost).
    pub merge_dim: u8,
    /// Planes per streaming chunk (power of two; concurrent streaming
    /// splits the streaming dimension into chunks of this many planes).
    pub stream_tile: u32,
    /// Fused time steps for temporal blocking (power of two; 1 = off).
    pub time_tile: u32,
    /// Loop unroll factor (power of two).
    pub unroll: u32,
    /// Stage streamed planes in shared memory (vs. registers + L2).
    pub use_smem: bool,
}

impl ParamSetting {
    /// A conservative default: 128×1 threads, no merging, no blocking.
    pub fn default_for(oc: &OptCombo) -> ParamSetting {
        ParamSetting {
            block_x: 128,
            block_y: 1,
            merge_factor: if oc.merge == Merge::None { 1 } else { 2 },
            merge_dim: if oc.st { 1 } else { 0 },
            stream_tile: 128,
            time_tile: if oc.tb { 2 } else { 1 },
            unroll: 2,
            use_smem: true,
        }
    }

    /// A conservative default that is structurally valid for the given
    /// dimensionality. [`Self::default_for`] picks `merge_dim = 1` for
    /// streaming OCs, which on a 2-D grid *is* the streaming axis and
    /// fails [`Self::is_valid_for`]; this variant repairs the merged
    /// axis, so serving code can always build a usable setting.
    pub fn default_for_dim(oc: &OptCombo, dim: Dim) -> ParamSetting {
        let mut p = ParamSetting::default_for(oc);
        let rank = dim.rank() as u8;
        if p.merge_dim >= rank || (oc.st && rank >= 2 && p.merge_dim == rank - 1) {
            p.merge_dim = 0;
        }
        p
    }

    /// Total threads per block.
    #[inline]
    pub fn threads_per_block(&self) -> u32 {
        self.block_x * self.block_y
    }

    /// Check structural validity against an OC and dimensionality.
    pub fn is_valid_for(&self, oc: &OptCombo, dim: Dim) -> bool {
        let rank = dim.rank() as u8;
        let pow2 = |v: u32| v.is_power_of_two();
        if !(pow2(self.block_x)
            && pow2(self.block_y)
            && pow2(self.merge_factor)
            && pow2(self.stream_tile)
            && pow2(self.time_tile)
            && pow2(self.unroll))
        {
            return false;
        }
        if self.merge_dim >= rank {
            return false;
        }
        if oc.merge == Merge::None && self.merge_factor != 1 {
            return false;
        }
        if oc.merge != Merge::None && self.merge_factor < 2 {
            return false;
        }
        if !oc.tb && self.time_tile != 1 {
            return false;
        }
        if oc.tb && self.time_tile < 2 {
            return false;
        }
        if oc.st {
            // The streaming axis is the outermost (rank-1); merging along
            // it would conflict with plane traversal. (1-D grids have no
            // other axis, so the check applies to rank >= 2 only.)
            if rank >= 2 && self.merge_dim == rank - 1 {
                return false;
            }
            // 2-D streaming blocks cover the x axis only.
            if dim == Dim::D2 && self.block_y != 1 {
                return false;
            }
        }
        true
    }

    /// Fixed-length feature encoding (paper §IV-E): numeric parameters are
    /// log2-transformed, Booleans map to {0, 1}, enumerations start at 1.
    /// Inapplicable parameters encode as 0.
    pub fn feature_vector(&self, oc: &OptCombo) -> Vec<f64> {
        let lg = |v: u32| (v as f64).log2();
        vec![
            lg(self.block_x),
            lg(self.block_y),
            if oc.merge == Merge::None {
                0.0
            } else {
                lg(self.merge_factor)
            },
            if oc.merge == Merge::None {
                0.0
            } else {
                self.merge_dim as f64 + 1.0
            },
            if oc.st { lg(self.stream_tile) } else { 0.0 },
            if oc.tb { lg(self.time_tile) } else { 0.0 },
            lg(self.unroll),
            if oc.st && self.use_smem { 1.0 } else { 0.0 },
        ]
    }

    /// Names of [`Self::feature_vector`] entries.
    pub fn feature_names() -> [&'static str; 8] {
        [
            "p_log2_block_x",
            "p_log2_block_y",
            "p_log2_merge_factor",
            "p_merge_dim",
            "p_log2_stream_tile",
            "p_log2_time_tile",
            "p_log2_unroll",
            "p_use_smem",
        ]
    }
}

/// The sampling space of parameter settings for a given OC.
#[derive(Debug, Clone)]
pub struct ParamSpace {
    oc: OptCombo,
    dim: Dim,
}

impl ParamSpace {
    /// Create the space for an OC on a grid of the given dimensionality.
    pub fn new(oc: OptCombo, dim: Dim) -> ParamSpace {
        ParamSpace { oc, dim }
    }

    /// The OC this space parameterises.
    pub fn oc(&self) -> &OptCombo {
        &self.oc
    }

    /// Randomly sample one structurally valid setting (paper §IV-A: the
    /// framework "randomly searches the parameter settings under each
    /// OC").
    pub fn sample<R: Rng>(&self, rng: &mut R) -> ParamSetting {
        let rank = self.dim.rank() as u8;
        let block_x = *[32u32, 64, 128, 256].choose(rng).unwrap();
        let block_y = if self.oc.st && self.dim == Dim::D2 {
            1
        } else if self.oc.st {
            // 3-D streaming pencils need a 2-D cross-section with real
            // extent in y, or the halo dwarfs the tile (every practical
            // 2.5-D implementation uses y-tiles of at least a few rows).
            *[2u32, 4, 8].choose(rng).unwrap()
        } else {
            *[1u32, 2, 4, 8].choose(rng).unwrap()
        };
        let merge_factor = if self.oc.merge == Merge::None {
            1
        } else {
            *[2u32, 4, 8].choose(rng).unwrap()
        };
        let merge_dim = if self.oc.st {
            // any non-streaming axis
            rng.gen_range(0..rank.max(2) - 1)
        } else {
            rng.gen_range(0..rank)
        };
        let stream_tile = *[64u32, 128, 256, 512].choose(rng).unwrap();
        let time_tile = if self.oc.tb {
            *[2u32, 4].choose(rng).unwrap()
        } else {
            1
        };
        let unroll = *[1u32, 2, 4, 8].choose(rng).unwrap();
        let use_smem = !self.oc.st || rng.gen_bool(0.75);
        let s = ParamSetting {
            block_x,
            block_y,
            merge_factor,
            merge_dim,
            stream_tile,
            time_tile,
            unroll,
            use_smem,
        };
        debug_assert!(s.is_valid_for(&self.oc, self.dim), "{s:?} for {}", self.oc);
        s
    }

    /// Sample `k` settings, de-duplicated (so the search budget is not
    /// wasted on repeats); may return fewer than `k` for tiny spaces.
    pub fn sample_many<R: Rng>(&self, rng: &mut R, k: usize) -> Vec<ParamSetting> {
        let mut out: Vec<ParamSetting> = Vec::with_capacity(k);
        let mut attempts = 0;
        while out.len() < k && attempts < k * 20 {
            attempts += 1;
            let s = self.sample(rng);
            if !out.contains(&s) {
                out.push(s);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn dim_aware_defaults_are_valid_for_all_ocs() {
        for oc in OptCombo::enumerate() {
            for dim in [Dim::D2, Dim::D3] {
                let s = ParamSetting::default_for_dim(&oc, dim);
                assert!(s.is_valid_for(&oc, dim), "{s:?} invalid for {oc} {dim}");
            }
        }
    }

    #[test]
    fn sampled_settings_are_valid_for_all_ocs() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for oc in OptCombo::enumerate() {
            for dim in [Dim::D2, Dim::D3] {
                let space = ParamSpace::new(oc, dim);
                for _ in 0..50 {
                    let s = space.sample(&mut rng);
                    assert!(s.is_valid_for(&oc, dim), "{s:?} invalid for {oc} {dim}");
                }
            }
        }
    }

    #[test]
    fn feature_vector_is_fixed_length_and_log2() {
        let oc = OptCombo::parse("ST_BM_RT_PR_TB").unwrap();
        let s = ParamSetting {
            block_x: 128,
            block_y: 1,
            merge_factor: 4,
            merge_dim: 0,
            stream_tile: 256,
            time_tile: 2,
            unroll: 8,
            use_smem: true,
        };
        let f = s.feature_vector(&oc);
        assert_eq!(f.len(), ParamSetting::feature_names().len());
        assert_eq!(f[0], 7.0); // log2(128)
        assert_eq!(f[2], 2.0); // log2(4)
        assert_eq!(f[5], 1.0); // log2(2)
        assert_eq!(f[7], 1.0); // bool
    }

    #[test]
    fn inapplicable_params_encode_as_zero() {
        let base = OptCombo::BASE;
        let s = ParamSetting::default_for(&base);
        let f = s.feature_vector(&base);
        assert_eq!(f[2], 0.0); // merge factor unused
        assert_eq!(f[4], 0.0); // stream tile unused
        assert_eq!(f[5], 0.0); // time tile unused
        assert_eq!(f[7], 0.0); // smem flag tied to ST
    }

    #[test]
    fn merge_dim_avoids_streaming_axis() {
        let oc = OptCombo::parse("ST_BM").unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let space = ParamSpace::new(oc, Dim::D3);
        for _ in 0..100 {
            let s = space.sample(&mut rng);
            assert!(s.merge_dim < 2, "streaming axis (z) must not be merged");
        }
    }

    #[test]
    fn validity_rejects_structural_mismatch() {
        let oc = OptCombo::BASE;
        let mut s = ParamSetting::default_for(&oc);
        assert!(s.is_valid_for(&oc, Dim::D2));
        s.merge_factor = 4; // merging factor without a merge OC
        assert!(!s.is_valid_for(&oc, Dim::D2));
        let tb = OptCombo::parse("TB").unwrap();
        let mut s = ParamSetting::default_for(&tb);
        assert!(s.is_valid_for(&tb, Dim::D2));
        s.time_tile = 1;
        assert!(!s.is_valid_for(&tb, Dim::D2));
    }

    #[test]
    fn sample_many_dedups() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let space = ParamSpace::new(OptCombo::BASE, Dim::D2);
        let v = space.sample_many(&mut rng, 10);
        let set: std::collections::HashSet<String> = v.iter().map(|s| format!("{s:?}")).collect();
        assert_eq!(set.len(), v.len());
    }
}

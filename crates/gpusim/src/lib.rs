#![warn(missing_docs)]

//! Analytical GPU performance simulator substrate for StencilMART.
//!
//! The paper measures stencil kernels on four real NVIDIA GPUs (P100,
//! V100, 2080 Ti, A100). This crate replaces that testbed with an
//! analytical model that reproduces the *structure* of those measurements:
//!
//! * [`arch`] — the GPU specifications of Table III/IV plus per-SM
//!   microarchitectural limits.
//! * [`opts`] — the six optimizations and the 30 valid combinations under
//!   the Table I constraints.
//! * [`params`] — per-OC parameter spaces (numeric power-of-two, Boolean,
//!   enumeration) with random sampling and log2 feature encoding.
//! * [`kernel`] — resource/traffic characterization of a configured
//!   kernel, including crash detection (register/shared-memory
//!   exhaustion).
//! * [`exec`] — occupancy plus a roofline-style execution-time model with
//!   synchronization, launch, and wave-quantization terms.
//! * [`noise`] — lognormal measurement noise.
//! * [`profiler`] — the pipeline's profiling stage: random parameter
//!   search per OC, recording every instance and the per-OC best.

pub mod arch;
pub mod exec;
pub mod kernel;
pub mod noise;
pub mod opts;
pub mod params;
pub mod profiler;
pub mod tuner;

pub use arch::{host_machines, GpuArch, GpuId, HostMachine, Vendor};
pub use exec::{
    occupancy, simulate, simulate_breakdown, simulate_breakdown_with, simulate_with, BoundaryModel,
    Occupancy, TimeBreakdown,
};
pub use kernel::{
    characterize, characterize_with, Crash, KernelProfile, LaunchResource, PatternAnalysis,
};
pub use noise::NoiseModel;
pub use opts::{Merge, Opt, OptCombo};
pub use params::{ParamSetting, ParamSpace};
pub use profiler::{
    profile_corpus, profile_corpus_multi, profile_corpus_tasks, profile_stencil,
    profile_stencil_with, shard_ranges, InstanceRecord, OcOutcome, ProfileConfig, StencilProfile,
};
pub use tuner::{tune_ga, tune_random, GaConfig, TuneResult};

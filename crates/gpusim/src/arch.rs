//! GPU architecture specifications (paper Tables III and IV, extended to a
//! multi-vendor matrix).
//!
//! The headline numbers for the NVIDIA parts (memory capacity/bandwidth, SM
//! count, double-precision TFLOPS, rental price) come straight from Table
//! III. The per-SM microarchitectural limits (registers, shared memory,
//! resident threads/blocks) come from the corresponding NVIDIA whitepapers
//! and feed the occupancy calculation in [`crate::exec`].
//!
//! The AMD-class presets extend the matrix along the axes Lappi et al.
//! ("Stencil Computations on AMD and Nvidia Graphics Processors", PAPERS.md)
//! identify as where AMD tuning diverges: wavefront width 64 (GCN/CDNA),
//! a 64 KiB LDS ceiling per workgroup regardless of generation, 4-byte LDS
//! banking, an optional Infinity-Cache-style L3 level (RDNA2), and heavier
//! kernel-launch overheads under the HIP runtime. Values are datasheet-class
//! figures for MI50/MI100/MI210-class and RX 6900 XT-class parts.

use serde::{Deserialize, Serialize};
use std::fmt;

/// GPU vendor. Divergence between the two is exactly what the
/// multi-vendor matrix stresses: wavefront width, LDS capacity/banking,
/// cache hierarchy depth, and launch overhead all differ by vendor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Vendor {
    /// NVIDIA (CUDA): warp width 32, generous per-block shared memory on
    /// recent parts, two-level cache hierarchy.
    Nvidia,
    /// AMD (HIP/ROCm): wavefront width 64 on GCN/CDNA, 64 KiB LDS per
    /// workgroup, optionally an Infinity-Cache L3 (RDNA2).
    Amd,
}

impl Vendor {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Vendor::Nvidia => "NVIDIA",
            Vendor::Amd => "AMD",
        }
    }
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Identifier for one of the evaluated GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GpuId {
    /// NVIDIA Tesla P100 (Pascal).
    P100,
    /// NVIDIA Tesla V100 (Volta).
    V100,
    /// NVIDIA GeForce RTX 2080 Ti (Turing).
    Rtx2080Ti,
    /// NVIDIA A100 (Ampere).
    A100,
    /// AMD Radeon Instinct MI50 (Vega 20, GCN5).
    Mi50,
    /// AMD Instinct MI100 (CDNA 1).
    Mi100,
    /// AMD Instinct MI210 (CDNA 2).
    Mi210,
    /// AMD Radeon RX 6900 XT (RDNA 2, Infinity Cache).
    Rx6900Xt,
}

impl GpuId {
    /// Every GPU in the evaluation matrix: the paper's four NVIDIA parts
    /// in Table III order, then the AMD parts in generation order. This
    /// array is the single source of truth for the matrix — presets,
    /// feature widths, datasets, and serving all derive from it, so
    /// adding a GPU is one preset here, not a fan-out of constants.
    pub const ALL: [GpuId; 8] = [
        GpuId::P100,
        GpuId::V100,
        GpuId::Rtx2080Ti,
        GpuId::A100,
        GpuId::Mi50,
        GpuId::Mi100,
        GpuId::Mi210,
        GpuId::Rx6900Xt,
    ];

    /// The paper's original four NVIDIA GPUs (Table III), for experiments
    /// that reproduce the paper's figures exactly.
    pub const PAPER: [GpuId; 4] = [GpuId::P100, GpuId::V100, GpuId::Rtx2080Ti, GpuId::A100];

    /// Display name as used in the paper's figures (and extended to the
    /// AMD parts).
    pub fn name(self) -> &'static str {
        match self {
            GpuId::P100 => "P100",
            GpuId::V100 => "V100",
            GpuId::Rtx2080Ti => "2080Ti",
            GpuId::A100 => "A100",
            GpuId::Mi50 => "MI50",
            GpuId::Mi100 => "MI100",
            GpuId::Mi210 => "MI210",
            GpuId::Rx6900Xt => "6900XT",
        }
    }

    /// The vendor of this GPU.
    pub fn vendor(self) -> Vendor {
        match self {
            GpuId::P100 | GpuId::V100 | GpuId::Rtx2080Ti | GpuId::A100 => Vendor::Nvidia,
            GpuId::Mi50 | GpuId::Mi100 | GpuId::Mi210 | GpuId::Rx6900Xt => Vendor::Amd,
        }
    }
}

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Full architectural description of a GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuArch {
    /// Which GPU this is.
    pub id: GpuId,
    /// Vendor (determines wavefront width, LDS banking, launch runtime).
    pub vendor: Vendor,
    /// Marketing generation (Pascal, Volta, ..., CDNA 2, RDNA 2).
    pub generation: &'static str,
    /// Device memory capacity in GiB (Table III "Mem.").
    pub mem_gib: f64,
    /// Peak DRAM bandwidth in GB/s (Table III "Mem. BW").
    pub mem_bw_gbs: f64,
    /// Number of streaming multiprocessors / compute units (Table III
    /// "SMs"; CUs for the AMD parts).
    pub sms: u32,
    /// Peak double-precision throughput in TFLOPS (Table III "TFLOPS";
    /// the paper's stencils are double precision, hence 0.41 for the
    /// consumer Turing part and 1.44 for the consumer RDNA2 part).
    pub fp64_tflops: f64,
    /// Cloud rental price in $/hr (Table III for the NVIDIA parts;
    /// `None` for consumer cards — 2080 Ti and 6900 XT — which are not
    /// rentable).
    pub rental_per_hr: Option<f64>,
    /// SM/CU core clock in GHz (boost).
    pub clock_ghz: f64,
    /// SIMD execution granularity: warp width 32 on NVIDIA, wavefront
    /// width 64 on GCN/CDNA AMD parts (RDNA runs wave32 natively).
    /// Occupancy is allocated in these granules.
    pub simd_width: u32,
    /// 32-bit registers per SM/CU.
    pub regs_per_sm: u32,
    /// Shared memory (LDS) per SM/CU in bytes.
    pub smem_per_sm: u32,
    /// Maximum shared memory a single block/workgroup may allocate, in
    /// bytes. 64 KiB on every AMD part — the per-vendor OC-validity
    /// cliff: an OC whose footprint fits A100's 164 KiB crashes here.
    pub smem_per_block: u32,
    /// Number of shared-memory/LDS banks.
    pub smem_banks: u32,
    /// Bytes served per bank per clock (8 on NVIDIA with fp64-friendly
    /// dual issue, 4 on AMD LDS).
    pub smem_bank_bytes: u32,
    /// Maximum resident threads per SM/CU.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks/workgroups per SM/CU.
    pub max_blocks_per_sm: u32,
    /// L2 cache size in bytes.
    pub l2_bytes: u64,
    /// Optional last-level cache behind L2 (RDNA2 Infinity Cache).
    /// `None` on every part with a two-level hierarchy.
    pub l3_bytes: Option<u64>,
    /// Fraction of peak DRAM bandwidth a well-tuned stencil sweep can
    /// achieve at full occupancy. Wider/faster memory systems are harder
    /// to saturate with halo-heavy access streams, which is one of the
    /// reasons the paper finds the "most powerful" GPU is not always the
    /// fastest for stencils.
    pub achievable_bw_frac: f64,
    /// Fraction of peak FP64 throughput stencil inner loops sustain.
    /// Small FP64 units (consumer Turing) are easy to keep saturated;
    /// A100's wide FP64 pipe shares issue slots with its tensor-core
    /// datapath and sustains a lower fraction on scalar stencil code —
    /// one reason the paper observes V100 beating A100 on dense stencils.
    pub achievable_flop_frac: f64,
    /// Latency of a block-wide barrier (`__syncthreads()` / `s_barrier`)
    /// in nanoseconds.
    pub barrier_ns: f64,
    /// Fixed kernel launch overhead in microseconds (HIP launches cost
    /// more than CUDA launches; Herten et al., PAPERS.md).
    pub launch_us: f64,
}

impl GpuArch {
    /// Look up the preset for a GPU.
    pub fn preset(id: GpuId) -> GpuArch {
        match id {
            GpuId::P100 => GpuArch {
                id,
                vendor: Vendor::Nvidia,
                generation: "Pascal",
                mem_gib: 16.0,
                mem_bw_gbs: 720.0,
                sms: 56,
                fp64_tflops: 5.3,
                rental_per_hr: Some(1.46),
                clock_ghz: 1.33,
                simd_width: 32,
                regs_per_sm: 65536,
                smem_per_sm: 64 * 1024,
                smem_per_block: 48 * 1024,
                smem_banks: 32,
                smem_bank_bytes: 8,
                max_threads_per_sm: 2048,
                max_blocks_per_sm: 32,
                l2_bytes: 4 * 1024 * 1024,
                l3_bytes: None,
                achievable_bw_frac: 0.78,
                achievable_flop_frac: 0.8,
                barrier_ns: 280.0,
                launch_us: 6.0,
            },
            GpuId::V100 => GpuArch {
                id,
                vendor: Vendor::Nvidia,
                generation: "Volta",
                mem_gib: 32.0,
                mem_bw_gbs: 900.0,
                sms: 80,
                fp64_tflops: 7.8,
                rental_per_hr: Some(2.48),
                clock_ghz: 1.53,
                simd_width: 32,
                regs_per_sm: 65536,
                smem_per_sm: 96 * 1024,
                smem_per_block: 96 * 1024,
                smem_banks: 32,
                smem_bank_bytes: 8,
                max_threads_per_sm: 2048,
                max_blocks_per_sm: 32,
                l2_bytes: 6 * 1024 * 1024,
                l3_bytes: None,
                achievable_bw_frac: 0.76,
                achievable_flop_frac: 0.85,
                barrier_ns: 220.0,
                launch_us: 5.0,
            },
            GpuId::Rtx2080Ti => GpuArch {
                id,
                vendor: Vendor::Nvidia,
                generation: "Turing",
                mem_gib: 11.0,
                mem_bw_gbs: 616.0,
                sms: 68,
                fp64_tflops: 0.41,
                rental_per_hr: None,
                clock_ghz: 1.55,
                simd_width: 32,
                regs_per_sm: 65536,
                smem_per_sm: 64 * 1024,
                smem_per_block: 64 * 1024,
                smem_banks: 32,
                smem_bank_bytes: 8,
                max_threads_per_sm: 1024,
                max_blocks_per_sm: 16,
                l2_bytes: 5632 * 1024,
                l3_bytes: None,
                achievable_bw_frac: 0.84,
                achievable_flop_frac: 0.95,
                barrier_ns: 190.0,
                launch_us: 4.0,
            },
            GpuId::A100 => GpuArch {
                id,
                vendor: Vendor::Nvidia,
                generation: "Ampere",
                mem_gib: 40.0,
                mem_bw_gbs: 1555.0,
                sms: 108,
                fp64_tflops: 9.7,
                rental_per_hr: Some(2.93),
                clock_ghz: 1.41,
                simd_width: 32,
                regs_per_sm: 65536,
                smem_per_sm: 164 * 1024,
                smem_per_block: 164 * 1024,
                smem_banks: 32,
                smem_bank_bytes: 8,
                max_threads_per_sm: 2048,
                max_blocks_per_sm: 32,
                l2_bytes: 40 * 1024 * 1024,
                l3_bytes: None,
                // Deliberately conservative: the paper's testbed ran CUDA
                // 10, which predates sm_80 — its A100 numbers (Fig. 4)
                // sit far below the card's datasheet potential, and these
                // fractions reproduce that observed behaviour.
                achievable_bw_frac: 0.52,
                achievable_flop_frac: 0.55,
                barrier_ns: 210.0,
                launch_us: 5.0,
            },
            GpuId::Mi50 => GpuArch {
                id,
                vendor: Vendor::Amd,
                generation: "Vega 20",
                mem_gib: 32.0,
                mem_bw_gbs: 1024.0,
                sms: 60,
                fp64_tflops: 6.6,
                rental_per_hr: Some(1.10),
                clock_ghz: 1.725,
                simd_width: 64,
                // GCN: 4× SIMD16 with 64 KiB VGPR each = 256 KiB per CU.
                regs_per_sm: 65536,
                smem_per_sm: 64 * 1024,
                smem_per_block: 64 * 1024,
                smem_banks: 32,
                smem_bank_bytes: 4,
                // 40 wavefronts × 64 lanes per CU.
                max_threads_per_sm: 2560,
                max_blocks_per_sm: 16,
                l2_bytes: 4 * 1024 * 1024,
                l3_bytes: None,
                achievable_bw_frac: 0.70,
                achievable_flop_frac: 0.75,
                barrier_ns: 260.0,
                launch_us: 9.0,
            },
            GpuId::Mi100 => GpuArch {
                id,
                vendor: Vendor::Amd,
                generation: "CDNA 1",
                mem_gib: 32.0,
                mem_bw_gbs: 1228.8,
                sms: 120,
                fp64_tflops: 11.5,
                rental_per_hr: Some(2.09),
                clock_ghz: 1.502,
                simd_width: 64,
                // CDNA doubles the GCN vector register file: 512 KiB/CU.
                regs_per_sm: 131072,
                smem_per_sm: 64 * 1024,
                smem_per_block: 64 * 1024,
                smem_banks: 32,
                smem_bank_bytes: 4,
                max_threads_per_sm: 2560,
                max_blocks_per_sm: 16,
                l2_bytes: 8 * 1024 * 1024,
                l3_bytes: None,
                achievable_bw_frac: 0.62,
                achievable_flop_frac: 0.60,
                barrier_ns: 240.0,
                launch_us: 8.0,
            },
            GpuId::Mi210 => GpuArch {
                id,
                vendor: Vendor::Amd,
                generation: "CDNA 2",
                mem_gib: 64.0,
                mem_bw_gbs: 1638.4,
                sms: 104,
                fp64_tflops: 22.6,
                rental_per_hr: Some(2.89),
                clock_ghz: 1.7,
                simd_width: 64,
                regs_per_sm: 131072,
                smem_per_sm: 64 * 1024,
                smem_per_block: 64 * 1024,
                smem_banks: 32,
                smem_bank_bytes: 4,
                max_threads_per_sm: 2560,
                max_blocks_per_sm: 16,
                l2_bytes: 8 * 1024 * 1024,
                l3_bytes: None,
                achievable_bw_frac: 0.58,
                achievable_flop_frac: 0.55,
                barrier_ns: 230.0,
                launch_us: 7.0,
            },
            GpuId::Rx6900Xt => GpuArch {
                id,
                vendor: Vendor::Amd,
                generation: "RDNA 2",
                mem_gib: 16.0,
                mem_bw_gbs: 512.0,
                sms: 80,
                // Consumer RDNA2 runs FP64 at 1:16 of FP32 (23 TF).
                fp64_tflops: 1.44,
                rental_per_hr: None,
                clock_ghz: 2.25,
                // RDNA executes wave32 natively.
                simd_width: 32,
                regs_per_sm: 65536,
                smem_per_sm: 64 * 1024,
                smem_per_block: 64 * 1024,
                smem_banks: 32,
                smem_bank_bytes: 4,
                max_threads_per_sm: 1024,
                max_blocks_per_sm: 16,
                l2_bytes: 4 * 1024 * 1024,
                // 128 MiB Infinity Cache: the optional L3 level.
                l3_bytes: Some(128 * 1024 * 1024),
                achievable_bw_frac: 0.80,
                achievable_flop_frac: 0.90,
                barrier_ns: 200.0,
                launch_us: 6.0,
            },
        }
    }

    /// All presets in [`GpuId::ALL`] order.
    pub fn all() -> Vec<GpuArch> {
        GpuId::ALL.iter().map(|&id| GpuArch::preset(id)).collect()
    }

    /// Peak double-precision FLOP/s.
    #[inline]
    pub fn peak_fp64_flops(&self) -> f64 {
        self.fp64_tflops * 1e12
    }

    /// Aggregate shared-memory/LDS bandwidth in bytes/s: `smem_banks` ×
    /// `smem_bank_bytes` per SM/CU per clock (32 × 8 on NVIDIA, 32 × 4 on
    /// AMD LDS).
    #[inline]
    pub fn smem_bw_bytes(&self) -> f64 {
        self.sms as f64
            * self.clock_ghz
            * 1e9
            * self.smem_banks as f64
            * self.smem_bank_bytes as f64
    }

    /// Hardware-characteristic feature vector fed to the cross-architecture
    /// regressor (paper §IV-E: memory capacity and bandwidth, SM count,
    /// peak FLOPS — extended with the vendor-divergence axes: SIMD width,
    /// per-block shared-memory ceiling, L3 capacity, launch overhead).
    pub fn feature_vector(&self) -> Vec<f64> {
        vec![
            self.mem_gib,
            self.mem_bw_gbs,
            self.sms as f64,
            self.fp64_tflops,
            self.simd_width as f64,
            self.smem_per_block as f64 / 1024.0,
            self.l3_bytes.unwrap_or(0) as f64 / (1024.0 * 1024.0),
            self.launch_us,
        ]
    }

    /// Names of [`Self::feature_vector`] entries. The slice length is the
    /// arch-feature width everywhere (datasets, bundles, serving) — never
    /// hardcode it.
    pub fn feature_names() -> &'static [&'static str] {
        &[
            "hw_mem_gib",
            "hw_mem_bw_gbs",
            "hw_sms",
            "hw_fp64_tflops",
            "hw_simd_width",
            "hw_smem_block_kib",
            "hw_l3_mib",
            "hw_launch_us",
        ]
    }
}

/// A host machine from Table IV (extended with the AMD testbed host).
/// Purely descriptive: the simulator models device-side execution only,
/// but the table is reproduced for completeness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostMachine {
    /// CPU model string.
    pub cpu: &'static str,
    /// Base clock in GHz.
    pub freq_ghz: f64,
    /// Physical core count.
    pub cores: u32,
    /// Main memory in GiB.
    pub main_mem_gib: u32,
    /// GPUs attached to this host.
    pub gpus: Vec<GpuId>,
}

/// The host machines of Table IV plus the AMD testbed host.
pub fn host_machines() -> Vec<HostMachine> {
    vec![
        HostMachine {
            cpu: "Xeon Silver 4110",
            freq_ghz: 2.1,
            cores: 16,
            main_mem_gib: 192,
            gpus: vec![GpuId::Rtx2080Ti],
        },
        HostMachine {
            cpu: "Xeon E5-2680 v4",
            freq_ghz: 2.4,
            cores: 28,
            main_mem_gib: 252,
            gpus: vec![GpuId::P100, GpuId::V100, GpuId::A100],
        },
        HostMachine {
            cpu: "EPYC 7742",
            freq_ghz: 2.25,
            cores: 64,
            main_mem_gib: 512,
            gpus: vec![GpuId::Mi50, GpuId::Mi100, GpuId::Mi210, GpuId::Rx6900Xt],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table3() {
        let p100 = GpuArch::preset(GpuId::P100);
        assert_eq!(p100.sms, 56);
        assert_eq!(p100.mem_bw_gbs, 720.0);
        assert_eq!(p100.rental_per_hr, Some(1.46));
        let a100 = GpuArch::preset(GpuId::A100);
        assert_eq!(a100.sms, 108);
        assert_eq!(a100.mem_bw_gbs, 1555.0);
        let ti = GpuArch::preset(GpuId::Rtx2080Ti);
        assert_eq!(ti.rental_per_hr, None);
        assert!((ti.fp64_tflops - 0.41).abs() < 1e-12);
    }

    #[test]
    fn sm_counts_grow_with_generation_order() {
        // Paper §II-A: SM count keeps growing across generations
        // (Pascal 56 < Volta 80 < Ampere 108).
        let sms: Vec<u32> = [GpuId::P100, GpuId::V100, GpuId::A100]
            .iter()
            .map(|&g| GpuArch::preset(g).sms)
            .collect();
        assert!(sms.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn feature_vector_has_documented_names() {
        for arch in GpuArch::all() {
            assert_eq!(
                arch.feature_vector().len(),
                GpuArch::feature_names().len(),
                "{}",
                arch.id
            );
        }
        let v100 = GpuArch::preset(GpuId::V100);
        assert_eq!(v100.feature_vector()[2], 80.0);
    }

    #[test]
    fn host_machines_cover_the_full_matrix() {
        let hosts = host_machines();
        assert_eq!(hosts.len(), 3);
        assert_eq!(hosts[0].gpus, vec![GpuId::Rtx2080Ti]);
        assert_eq!(hosts[1].cores, 28);
        // Every GPU in the matrix lives on exactly one host.
        let mut hosted: Vec<GpuId> = hosts.iter().flat_map(|h| h.gpus.clone()).collect();
        hosted.sort();
        let mut all = GpuId::ALL.to_vec();
        all.sort();
        assert_eq!(hosted, all);
    }

    #[test]
    fn smem_bw_far_exceeds_dram_bw() {
        for arch in GpuArch::all() {
            assert!(
                arch.smem_bw_bytes() > 10.0 * arch.mem_bw_gbs * 1e9,
                "{}",
                arch.id
            );
        }
    }

    #[test]
    fn gpu_id_display_names() {
        assert_eq!(GpuId::Rtx2080Ti.to_string(), "2080Ti");
        assert_eq!(GpuId::Mi210.to_string(), "MI210");
        assert_eq!(GpuId::ALL.len(), 8);
        assert_eq!(GpuId::PAPER.len(), 4);
    }

    #[test]
    fn matrix_spans_two_vendors() {
        let nvidia = GpuId::ALL.iter().filter(|g| g.vendor() == Vendor::Nvidia);
        let amd = GpuId::ALL.iter().filter(|g| g.vendor() == Vendor::Amd);
        assert_eq!(nvidia.count(), 4);
        assert_eq!(amd.count(), 4);
        for id in GpuId::ALL {
            assert_eq!(GpuArch::preset(id).vendor, id.vendor());
        }
    }

    #[test]
    fn amd_presets_model_vendor_divergence() {
        for id in [GpuId::Mi50, GpuId::Mi100, GpuId::Mi210] {
            let arch = GpuArch::preset(id);
            assert_eq!(arch.simd_width, 64, "{id}: GCN/CDNA wavefront is 64");
            assert_eq!(arch.smem_per_block, 64 * 1024, "{id}: LDS ceiling");
            assert_eq!(arch.smem_bank_bytes, 4, "{id}: LDS banks are 4-byte");
            assert!(
                arch.rental_per_hr.is_some(),
                "{id}: datacenter parts priced"
            );
        }
        // The consumer RDNA2 part: wave32, unpriced, Infinity-Cache L3.
        let rx = GpuArch::preset(GpuId::Rx6900Xt);
        assert_eq!(rx.simd_width, 32);
        assert_eq!(rx.rental_per_hr, None);
        assert_eq!(rx.l3_bytes, Some(128 * 1024 * 1024));
        // No NVIDIA part has an L3 level.
        for id in GpuId::PAPER {
            assert_eq!(GpuArch::preset(id).l3_bytes, None);
        }
    }

    #[test]
    fn nvidia_smem_bandwidth_formula_unchanged() {
        // The banked formula must reproduce the pre-multi-vendor
        // hardcoded 32 × 8 model bit-for-bit on NVIDIA parts.
        for id in GpuId::PAPER {
            let arch = GpuArch::preset(id);
            let legacy = arch.sms as f64 * arch.clock_ghz * 1e9 * 32.0 * 8.0;
            assert_eq!(arch.smem_bw_bytes(), legacy);
        }
    }
}

//! GPU architecture specifications (paper Tables III and IV).
//!
//! The headline numbers (memory capacity/bandwidth, SM count, double-
//! precision TFLOPS, rental price) come straight from Table III. The
//! per-SM microarchitectural limits (registers, shared memory, resident
//! threads/blocks) come from the corresponding NVIDIA whitepapers and feed
//! the occupancy calculation in [`crate::exec`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier for one of the four evaluated GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GpuId {
    /// NVIDIA Tesla P100 (Pascal).
    P100,
    /// NVIDIA Tesla V100 (Volta).
    V100,
    /// NVIDIA GeForce RTX 2080 Ti (Turing).
    Rtx2080Ti,
    /// NVIDIA A100 (Ampere).
    A100,
}

impl GpuId {
    /// All evaluated GPUs, in the paper's Table III order.
    pub const ALL: [GpuId; 4] = [GpuId::P100, GpuId::V100, GpuId::Rtx2080Ti, GpuId::A100];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            GpuId::P100 => "P100",
            GpuId::V100 => "V100",
            GpuId::Rtx2080Ti => "2080Ti",
            GpuId::A100 => "A100",
        }
    }
}

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Full architectural description of a GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuArch {
    /// Which GPU this is.
    pub id: GpuId,
    /// Marketing generation (Pascal, Volta, Turing, Ampere).
    pub generation: &'static str,
    /// Device memory capacity in GiB (Table III "Mem.").
    pub mem_gib: f64,
    /// Peak DRAM bandwidth in GB/s (Table III "Mem. BW").
    pub mem_bw_gbs: f64,
    /// Number of streaming multiprocessors (Table III "SMs").
    pub sms: u32,
    /// Peak double-precision throughput in TFLOPS (Table III "TFLOPS";
    /// the paper's stencils are double precision, hence 0.41 for the
    /// consumer Turing part).
    pub fp64_tflops: f64,
    /// Google Cloud rental price in $/hr (Table III; `None` for the
    /// 2080 Ti, which is not rentable).
    pub rental_per_hr: Option<f64>,
    /// SM core clock in GHz (boost).
    pub clock_ghz: f64,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub smem_per_sm: u32,
    /// Maximum shared memory a single block may allocate, in bytes.
    pub smem_per_block: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// L2 cache size in bytes.
    pub l2_bytes: u64,
    /// Fraction of peak DRAM bandwidth a well-tuned stencil sweep can
    /// achieve at full occupancy. Wider/faster memory systems are harder
    /// to saturate with halo-heavy access streams, which is one of the
    /// reasons the paper finds the "most powerful" GPU is not always the
    /// fastest for stencils.
    pub achievable_bw_frac: f64,
    /// Fraction of peak FP64 throughput stencil inner loops sustain.
    /// Small FP64 units (consumer Turing) are easy to keep saturated;
    /// A100's wide FP64 pipe shares issue slots with its tensor-core
    /// datapath and sustains a lower fraction on scalar stencil code —
    /// one reason the paper observes V100 beating A100 on dense stencils.
    pub achievable_flop_frac: f64,
    /// Latency of a block-wide `__syncthreads()` barrier in nanoseconds.
    pub barrier_ns: f64,
    /// Fixed kernel launch overhead in microseconds.
    pub launch_us: f64,
}

impl GpuArch {
    /// Look up the preset for a GPU.
    pub fn preset(id: GpuId) -> GpuArch {
        match id {
            GpuId::P100 => GpuArch {
                id,
                generation: "Pascal",
                mem_gib: 16.0,
                mem_bw_gbs: 720.0,
                sms: 56,
                fp64_tflops: 5.3,
                rental_per_hr: Some(1.46),
                clock_ghz: 1.33,
                regs_per_sm: 65536,
                smem_per_sm: 64 * 1024,
                smem_per_block: 48 * 1024,
                max_threads_per_sm: 2048,
                max_blocks_per_sm: 32,
                l2_bytes: 4 * 1024 * 1024,
                achievable_bw_frac: 0.78,
                achievable_flop_frac: 0.8,
                barrier_ns: 280.0,
                launch_us: 6.0,
            },
            GpuId::V100 => GpuArch {
                id,
                generation: "Volta",
                mem_gib: 32.0,
                mem_bw_gbs: 900.0,
                sms: 80,
                fp64_tflops: 7.8,
                rental_per_hr: Some(2.48),
                clock_ghz: 1.53,
                regs_per_sm: 65536,
                smem_per_sm: 96 * 1024,
                smem_per_block: 96 * 1024,
                max_threads_per_sm: 2048,
                max_blocks_per_sm: 32,
                l2_bytes: 6 * 1024 * 1024,
                achievable_bw_frac: 0.76,
                achievable_flop_frac: 0.85,
                barrier_ns: 220.0,
                launch_us: 5.0,
            },
            GpuId::Rtx2080Ti => GpuArch {
                id,
                generation: "Turing",
                mem_gib: 11.0,
                mem_bw_gbs: 616.0,
                sms: 68,
                fp64_tflops: 0.41,
                rental_per_hr: None,
                clock_ghz: 1.55,
                regs_per_sm: 65536,
                smem_per_sm: 64 * 1024,
                smem_per_block: 64 * 1024,
                max_threads_per_sm: 1024,
                max_blocks_per_sm: 16,
                l2_bytes: 5632 * 1024,
                achievable_bw_frac: 0.84,
                achievable_flop_frac: 0.95,
                barrier_ns: 190.0,
                launch_us: 4.0,
            },
            GpuId::A100 => GpuArch {
                id,
                generation: "Ampere",
                mem_gib: 40.0,
                mem_bw_gbs: 1555.0,
                sms: 108,
                fp64_tflops: 9.7,
                rental_per_hr: Some(2.93),
                clock_ghz: 1.41,
                regs_per_sm: 65536,
                smem_per_sm: 164 * 1024,
                smem_per_block: 164 * 1024,
                max_threads_per_sm: 2048,
                max_blocks_per_sm: 32,
                l2_bytes: 40 * 1024 * 1024,
                // Deliberately conservative: the paper's testbed ran CUDA
                // 10, which predates sm_80 — its A100 numbers (Fig. 4)
                // sit far below the card's datasheet potential, and these
                // fractions reproduce that observed behaviour.
                achievable_bw_frac: 0.52,
                achievable_flop_frac: 0.55,
                barrier_ns: 210.0,
                launch_us: 5.0,
            },
        }
    }

    /// All four presets in Table III order.
    pub fn all() -> Vec<GpuArch> {
        GpuId::ALL.iter().map(|&id| GpuArch::preset(id)).collect()
    }

    /// Peak double-precision FLOP/s.
    #[inline]
    pub fn peak_fp64_flops(&self) -> f64 {
        self.fp64_tflops * 1e12
    }

    /// Aggregate shared-memory bandwidth in bytes/s: 32 banks × 8 bytes
    /// per SM per clock.
    #[inline]
    pub fn smem_bw_bytes(&self) -> f64 {
        self.sms as f64 * self.clock_ghz * 1e9 * 32.0 * 8.0
    }

    /// Hardware-characteristic feature vector fed to the cross-architecture
    /// regressor (paper §IV-E: memory capacity and bandwidth, SM count,
    /// peak FLOPS).
    pub fn feature_vector(&self) -> Vec<f64> {
        vec![
            self.mem_gib,
            self.mem_bw_gbs,
            self.sms as f64,
            self.fp64_tflops,
        ]
    }

    /// Names of [`Self::feature_vector`] entries.
    pub fn feature_names() -> [&'static str; 4] {
        ["hw_mem_gib", "hw_mem_bw_gbs", "hw_sms", "hw_fp64_tflops"]
    }
}

/// A host machine from Table IV. Purely descriptive: the simulator models
/// device-side execution only, but the table is reproduced for
/// completeness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostMachine {
    /// CPU model string.
    pub cpu: &'static str,
    /// Base clock in GHz.
    pub freq_ghz: f64,
    /// Physical core count.
    pub cores: u32,
    /// Main memory in GiB.
    pub main_mem_gib: u32,
    /// GPUs attached to this host.
    pub gpus: Vec<GpuId>,
}

/// The two host machines of Table IV.
pub fn host_machines() -> Vec<HostMachine> {
    vec![
        HostMachine {
            cpu: "Xeon Silver 4110",
            freq_ghz: 2.1,
            cores: 16,
            main_mem_gib: 192,
            gpus: vec![GpuId::Rtx2080Ti],
        },
        HostMachine {
            cpu: "Xeon E5-2680 v4",
            freq_ghz: 2.4,
            cores: 28,
            main_mem_gib: 252,
            gpus: vec![GpuId::P100, GpuId::V100, GpuId::A100],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table3() {
        let p100 = GpuArch::preset(GpuId::P100);
        assert_eq!(p100.sms, 56);
        assert_eq!(p100.mem_bw_gbs, 720.0);
        assert_eq!(p100.rental_per_hr, Some(1.46));
        let a100 = GpuArch::preset(GpuId::A100);
        assert_eq!(a100.sms, 108);
        assert_eq!(a100.mem_bw_gbs, 1555.0);
        let ti = GpuArch::preset(GpuId::Rtx2080Ti);
        assert_eq!(ti.rental_per_hr, None);
        assert!((ti.fp64_tflops - 0.41).abs() < 1e-12);
    }

    #[test]
    fn sm_counts_grow_with_generation_order() {
        // Paper §II-A: SM count keeps growing across generations
        // (Pascal 56 < Volta 80 < Ampere 108).
        let sms: Vec<u32> = [GpuId::P100, GpuId::V100, GpuId::A100]
            .iter()
            .map(|&g| GpuArch::preset(g).sms)
            .collect();
        assert!(sms.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn feature_vector_has_documented_names() {
        let v100 = GpuArch::preset(GpuId::V100);
        assert_eq!(v100.feature_vector().len(), GpuArch::feature_names().len());
        assert_eq!(v100.feature_vector()[2], 80.0);
    }

    #[test]
    fn host_machines_match_table4() {
        let hosts = host_machines();
        assert_eq!(hosts.len(), 2);
        assert_eq!(hosts[0].gpus, vec![GpuId::Rtx2080Ti]);
        assert_eq!(hosts[1].cores, 28);
    }

    #[test]
    fn smem_bw_far_exceeds_dram_bw() {
        for arch in GpuArch::all() {
            assert!(arch.smem_bw_bytes() > 10.0 * arch.mem_bw_gbs * 1e9);
        }
    }

    #[test]
    fn gpu_id_display_names() {
        assert_eq!(GpuId::Rtx2080Ti.to_string(), "2080Ti");
        assert_eq!(GpuId::ALL.len(), 4);
    }
}

//! Execution-time model: occupancy calculation plus a
//! memory/compute/shared-memory roofline with synchronization, launch, and
//! wave-quantization terms.

use crate::arch::GpuArch;
use crate::kernel::{characterize_with, Crash, KernelProfile, LaunchResource, PatternAnalysis};
use crate::opts::OptCombo;
use crate::params::ParamSetting;
use serde::{Deserialize, Serialize};
use stencilmart_stencil::pattern::StencilPattern;

/// Occupancy analysis for one kernel configuration on one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident threads per SM.
    pub threads_per_sm: u32,
    /// Fraction of the SM's maximum resident threads.
    pub fraction: f64,
    /// Which resource limits residency.
    pub limiter: OccLimiter,
}

/// The resource that limits occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OccLimiter {
    /// Max resident threads per SM.
    Threads,
    /// Register file capacity.
    Registers,
    /// Shared memory capacity.
    SharedMemory,
    /// Max resident blocks per SM.
    Blocks,
}

/// Compute occupancy from a kernel profile (standard CUDA occupancy
/// calculation, generalized to SIMD granules).
///
/// Residency is allocated in `arch.simd_width` granules — warps of 32 on
/// NVIDIA, wavefronts of 64 on GCN/CDNA AMD parts — so a 32-thread block
/// still occupies a full 64-lane wavefront slot (threads *and* registers)
/// on a wave64 part. For NVIDIA presets the granule math is bit-identical
/// to the classic per-thread formulation because block sizes are warp
/// multiples and `⌊⌊a/b⌋/c⌋ = ⌊a/(b·c)⌋` for positive integers.
///
/// A launch whose single block oversubscribes the SM register file or
/// shared-memory capacity returns a structured
/// [`Crash::LaunchOversubscribed`] — never `Ok` with zero occupancy.
pub fn occupancy(profile: &KernelProfile, arch: &GpuArch) -> Result<Occupancy, Crash> {
    let threads = profile.threads_per_block.max(1);
    let simd = arch.simd_width.max(1);
    let granules_per_block = threads.div_ceil(simd);
    let granule_threads = granules_per_block * simd;
    let by_threads = arch.max_threads_per_sm / granule_threads;
    let regs_per_granule = profile.regs_per_thread.max(1) * simd;
    let by_regs = (arch.regs_per_sm / regs_per_granule) / granules_per_block;
    if by_regs == 0 {
        return Err(Crash::LaunchOversubscribed(LaunchResource::Registers));
    }
    let by_smem = arch
        .smem_per_sm
        .checked_div(profile.smem_per_block)
        .unwrap_or(u32::MAX);
    if by_smem == 0 {
        return Err(Crash::LaunchOversubscribed(LaunchResource::SharedMemory));
    }
    let by_blocks = arch.max_blocks_per_sm;
    let candidates = [
        (by_threads, OccLimiter::Threads),
        (by_regs, OccLimiter::Registers),
        (by_smem, OccLimiter::SharedMemory),
        (by_blocks, OccLimiter::Blocks),
    ];
    let (blocks_per_sm, limiter) = candidates
        .iter()
        .copied()
        .min_by_key(|&(b, _)| b)
        .expect("non-empty");
    if blocks_per_sm == 0 {
        return Err(Crash::Unschedulable);
    }
    let threads_per_sm = (blocks_per_sm * threads).min(arch.max_threads_per_sm);
    Ok(Occupancy {
        blocks_per_sm,
        threads_per_sm,
        fraction: threads_per_sm as f64 / arch.max_threads_per_sm as f64,
        limiter,
    })
}

/// Optional boundary-condition cost model (paper §VII future work): a halo
/// exchange / ghost-fill pass adds traffic proportional to the grid's
/// surface times the stencil order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BoundaryModel {
    /// Periodic or unhandled boundaries: no extra cost (paper default).
    None,
    /// Ghost cells are refilled every sweep.
    GhostFill,
}

impl BoundaryModel {
    /// Extra DRAM bytes for one sweep of an `n^rank` grid of order-`r`
    /// cells.
    pub fn extra_bytes(&self, n: f64, rank: i32, r: f64) -> f64 {
        match self {
            BoundaryModel::None => 0.0,
            BoundaryModel::GhostFill => {
                // 2·rank faces, each n^(rank-1) cells, r deep, read+write.
                2.0 * rank as f64 * n.powi(rank - 1) * r * 2.0 * crate::kernel::ELEM_BYTES
            }
        }
    }
}

/// Detailed timing breakdown for one sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// DRAM-traffic-limited time (ms).
    pub t_mem_ms: f64,
    /// FP64-throughput-limited time (ms).
    pub t_comp_ms: f64,
    /// Shared-memory-bandwidth-limited time (ms).
    pub t_smem_ms: f64,
    /// Exposed synchronization time (ms).
    pub t_sync_ms: f64,
    /// Kernel launch overhead (ms).
    pub t_launch_ms: f64,
    /// Total per-sweep time (ms), noise-free.
    pub total_ms: f64,
    /// Occupancy analysis.
    pub occupancy: Occupancy,
}

/// Simulate one sweep and return its timing breakdown, or the crash that
/// prevents execution.
///
/// Convenience wrapper over [`simulate_breakdown_with`] that derives the
/// pattern analysis on the spot; callers evaluating many configurations
/// of the same stencil should build one [`PatternAnalysis`] and reuse it.
pub fn simulate_breakdown(
    pattern: &StencilPattern,
    grid: usize,
    oc: &OptCombo,
    params: &ParamSetting,
    arch: &GpuArch,
    boundary: BoundaryModel,
) -> Result<TimeBreakdown, Crash> {
    simulate_breakdown_with(
        &PatternAnalysis::new(pattern),
        grid,
        oc,
        params,
        arch,
        boundary,
    )
}

/// Simulate one sweep from a precomputed [`PatternAnalysis`] and return
/// its timing breakdown, or the crash that prevents execution.
pub fn simulate_breakdown_with(
    analysis: &PatternAnalysis,
    grid: usize,
    oc: &OptCombo,
    params: &ParamSetting,
    arch: &GpuArch,
    boundary: BoundaryModel,
) -> Result<TimeBreakdown, Crash> {
    let profile = characterize_with(analysis, grid, oc, params, arch)?;
    let occ = occupancy(&profile, arch)?;
    let rank = analysis.dim().rank() as i32;
    let n = grid as f64;
    let points = n.powi(rank);

    // Wave quantization: blocks execute in waves of `concurrent` blocks;
    // a fractional final wave (or fewer blocks than one wave) wastes SMs.
    let concurrent = (occ.blocks_per_sm as u64 * arch.sms as u64).max(1);
    let waves_exact = profile.total_blocks as f64 / concurrent as f64;
    let wave_factor = waves_exact.ceil().max(1.0) / waves_exact.max(1e-12);

    // Effective DRAM bandwidth grows with resident warps (latency
    // hiding); saturation is gradual, so occupancy cliffs from register
    // or shared-memory pressure translate into real slowdowns.
    let occ_bw = (occ.fraction / 0.7).powf(0.5).min(1.0);
    // Infinity-Cache-style L3 (RDNA2): when the sweep's distinct-row
    // working set fits comfortably, the traffic is served at L3 rather
    // than DRAM bandwidth — modeled as a bandwidth uplift so occupancy
    // scaling still applies. Parts without an L3 level are untouched.
    let l3_boost = match arch.l3_bytes {
        Some(l3) => {
            let row_ws =
                analysis.distinct_rows() as f64 * n.powi(rank - 1) * crate::kernel::ELEM_BYTES;
            if row_ws < 0.5 * l3 as f64 {
                1.8
            } else {
                1.0
            }
        }
        None => 1.0,
    };
    let eff_bw = arch.mem_bw_gbs * 1e9 * arch.achievable_bw_frac * occ_bw * l3_boost;
    let bytes = profile.dram_bytes_per_point * points
        + boundary.extra_bytes(n, rank, analysis.order() as f64);
    let t_mem = bytes / eff_bw;

    // FP64 pipes need a moderate occupancy to stay fed; ILP helps at low
    // occupancy, and each architecture sustains its own fraction of peak.
    let comp_eff =
        ((occ.fraction / 0.5).powf(0.6) * profile.ilp).min(1.0) * arch.achievable_flop_frac;
    let t_comp = profile.flops_per_point * points / (arch.peak_fp64_flops() * comp_eff);

    let t_smem = profile.smem_bytes_per_point * points / arch.smem_bw_bytes();

    // Barriers sit on each block's critical path once per staged plane.
    let t_sync = profile.syncs_per_block as f64
        * arch.barrier_ns
        * 1e-9
        * profile.sync_exposure
        * waves_exact.ceil().max(1.0);

    // The kernel profile's traffic/compute figures are already per time
    // step; only the launch overhead amortizes over temporal blocking's
    // fused steps (one launch covers `time_tile` steps).
    let t_launch = arch.launch_us * 1e-6 / profile.time_tile as f64;

    let work = t_mem.max(t_comp).max(t_smem) * wave_factor;
    let total = work + t_sync + t_launch;

    Ok(TimeBreakdown {
        t_mem_ms: t_mem * 1e3,
        t_comp_ms: t_comp * 1e3,
        t_smem_ms: t_smem * 1e3,
        t_sync_ms: t_sync * 1e3,
        t_launch_ms: t_launch * 1e3,
        total_ms: total * 1e3,
        occupancy: occ,
    })
}

/// Simulate one sweep and return its noise-free time in milliseconds.
pub fn simulate(
    pattern: &StencilPattern,
    grid: usize,
    oc: &OptCombo,
    params: &ParamSetting,
    arch: &GpuArch,
) -> Result<f64, Crash> {
    simulate_breakdown(pattern, grid, oc, params, arch, BoundaryModel::None).map(|b| b.total_ms)
}

/// Simulate one sweep from a precomputed [`PatternAnalysis`] and return
/// its noise-free time in milliseconds — the hot entry point of the
/// profiler and tuner.
pub fn simulate_with(
    analysis: &PatternAnalysis,
    grid: usize,
    oc: &OptCombo,
    params: &ParamSetting,
    arch: &GpuArch,
) -> Result<f64, Crash> {
    simulate_breakdown_with(analysis, grid, oc, params, arch, BoundaryModel::None)
        .map(|b| b.total_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GpuId;
    use crate::kernel::characterize;
    use stencilmart_stencil::pattern::Dim;
    use stencilmart_stencil::shapes;

    fn v100() -> GpuArch {
        GpuArch::preset(GpuId::V100)
    }

    #[test]
    fn occupancy_full_for_small_kernel() {
        let p = shapes::star(Dim::D2, 1);
        let prof = characterize(
            &p,
            8192,
            &OptCombo::BASE,
            &ParamSetting::default_for(&OptCombo::BASE),
            &v100(),
        )
        .unwrap();
        let occ = occupancy(&prof, &v100()).unwrap();
        assert!(occ.fraction > 0.6, "{occ:?}");
    }

    #[test]
    fn register_pressure_limits_occupancy() {
        let p = shapes::box_(Dim::D3, 4); // 729 points: heavy registers
        let cm = OptCombo::parse("CM").unwrap();
        let mut params = ParamSetting::default_for(&cm);
        params.merge_factor = 8;
        let prof = characterize(&p, 512, &cm, &params, &v100()).unwrap();
        let occ = occupancy(&prof, &v100()).unwrap();
        assert_eq!(occ.limiter, OccLimiter::Registers);
        assert!(occ.fraction < 0.6);
    }

    #[test]
    fn star2d1r_v100_time_is_milliseconds() {
        // Sanity: an 8192² double-precision sweep moves ≥ 1 GiB; at
        // ~700 GB/s effective that is ~1.5–4 ms.
        let p = shapes::star(Dim::D2, 1);
        let t = simulate(
            &p,
            8192,
            &OptCombo::BASE,
            &ParamSetting::default_for(&OptCombo::BASE),
            &v100(),
        )
        .unwrap();
        assert!(t > 0.5 && t < 20.0, "t = {t} ms");
    }

    #[test]
    fn memory_bound_for_low_order_compute_bound_for_dense() {
        let arch = v100();
        let params = ParamSetting::default_for(&OptCombo::BASE);
        let lo = simulate_breakdown(
            &shapes::star(Dim::D2, 1),
            8192,
            &OptCombo::BASE,
            &params,
            &arch,
            BoundaryModel::None,
        )
        .unwrap();
        assert!(lo.t_mem_ms > lo.t_comp_ms);
        let hi = simulate_breakdown(
            &shapes::box_(Dim::D3, 4),
            512,
            &OptCombo::parse("ST").unwrap(),
            &{
                let mut p = ParamSetting::default_for(&OptCombo::parse("ST").unwrap());
                p.block_x = 32;
                p.block_y = 8;
                p
            },
            &arch,
            BoundaryModel::None,
        )
        .unwrap();
        assert!(hi.t_comp_ms > hi.t_mem_ms, "{hi:?}");
    }

    #[test]
    fn fp64_poor_turing_suffers_on_dense_stencils() {
        let p = shapes::box_(Dim::D3, 3);
        let st = OptCombo::parse("ST").unwrap();
        let mut params = ParamSetting::default_for(&st);
        params.block_x = 32;
        params.block_y = 8;
        let t_v100 = simulate(&p, 512, &st, &params, &v100()).unwrap();
        let t_ti = simulate(&p, 512, &st, &params, &GpuArch::preset(GpuId::Rtx2080Ti)).unwrap();
        assert!(t_ti > 5.0 * t_v100, "2080Ti {t_ti} vs V100 {t_v100}");
    }

    #[test]
    fn boundary_model_adds_cost() {
        let p = shapes::star(Dim::D3, 2);
        let params = ParamSetting::default_for(&OptCombo::BASE);
        let plain = simulate_breakdown(
            &p,
            512,
            &OptCombo::BASE,
            &params,
            &v100(),
            BoundaryModel::None,
        )
        .unwrap();
        let ghost = simulate_breakdown(
            &p,
            512,
            &OptCombo::BASE,
            &params,
            &v100(),
            BoundaryModel::GhostFill,
        )
        .unwrap();
        assert!(ghost.total_ms > plain.total_ms);
    }

    #[test]
    fn crashes_propagate() {
        let p = shapes::box_(Dim::D3, 4);
        let tb = OptCombo::parse("TB").unwrap();
        let mut params = ParamSetting::default_for(&tb);
        params.block_x = 32;
        params.block_y = 4;
        assert!(simulate(&p, 512, &tb, &params, &v100()).is_err());
    }

    #[test]
    fn memory_bound_times_follow_bandwidth_ordering() {
        // For a plainly memory-bound kernel, faster memory systems are
        // faster end to end: V100 (900 GB/s) < P100 (720) < 2080Ti (616)
        // in time.
        let p = shapes::star(Dim::D2, 1);
        let oc = OptCombo::parse("ST").unwrap();
        let params = ParamSetting::default_for(&oc);
        let t = |g: GpuId| simulate(&p, 8192, &oc, &params, &GpuArch::preset(g)).unwrap();
        assert!(t(GpuId::V100) < t(GpuId::P100));
        assert!(t(GpuId::P100) < t(GpuId::Rtx2080Ti));
    }

    #[test]
    fn wave_quantization_penalizes_partial_waves() {
        // Identical per-point work, but a block count just over a wave
        // boundary pays for a second wave.
        let p = shapes::star(Dim::D2, 1);
        let params = ParamSetting::default_for(&OptCombo::BASE);
        let arch = v100();
        let prof = characterize(&p, 8192, &OptCombo::BASE, &params, &arch).unwrap();
        let occ = occupancy(&prof, &arch).unwrap();
        let concurrent = occ.blocks_per_sm as u64 * arch.sms as u64;
        // The model exposes the penalty only through total time; verify
        // the breakdown reports a total at or above the roofline, which
        // the wave factor scales.
        let b = simulate_breakdown(
            &p,
            8192,
            &OptCombo::BASE,
            &params,
            &arch,
            BoundaryModel::None,
        )
        .unwrap();
        let roof = b.t_mem_ms.max(b.t_comp_ms).max(b.t_smem_ms);
        assert!(b.total_ms >= roof);
        assert!(concurrent > 0);
    }

    /// A synthetic profile for driving `occupancy` directly; the
    /// characterization layer rejects these configurations before they
    /// reach the occupancy calculation, so the launch-failure paths can
    /// only be pinned this way.
    fn synthetic_profile(threads: u32, regs: u32, smem: u32) -> KernelProfile {
        KernelProfile {
            threads_per_block: threads,
            total_blocks: 1024,
            regs_per_thread: regs,
            smem_per_block: smem,
            dram_bytes_per_point: 16.0,
            smem_bytes_per_point: 0.0,
            flops_per_point: 10.0,
            ilp: 1.0,
            syncs_per_block: 1,
            sync_exposure: 1.0,
            time_tile: 1,
        }
    }

    #[test]
    fn oversubscribed_registers_crash_on_every_preset() {
        // 255 regs × 1024 threads = 261,120 registers — beyond every
        // register file in the matrix. Must be a structured crash, never
        // Ok with zero occupancy.
        for arch in GpuArch::all() {
            let prof = synthetic_profile(1024, 255, 0);
            assert_eq!(
                occupancy(&prof, &arch).unwrap_err(),
                Crash::LaunchOversubscribed(LaunchResource::Registers),
                "{}",
                arch.id
            );
        }
    }

    #[test]
    fn oversubscribed_smem_crashes_on_every_preset() {
        // 200 KiB of shared memory exceeds even A100's 164 KiB SM.
        for arch in GpuArch::all() {
            let prof = synthetic_profile(128, 32, 200 * 1024);
            assert_eq!(
                occupancy(&prof, &arch).unwrap_err(),
                Crash::LaunchOversubscribed(LaunchResource::SharedMemory),
                "{}",
                arch.id
            );
        }
    }

    #[test]
    fn schedulable_launches_never_report_zero_occupancy() {
        for arch in GpuArch::all() {
            let occ = occupancy(&synthetic_profile(256, 32, 4096), &arch).unwrap();
            assert!(occ.blocks_per_sm > 0, "{}", arch.id);
            assert!(occ.fraction > 0.0, "{}", arch.id);
        }
    }

    #[test]
    fn nvidia_occupancy_matches_legacy_per_thread_formula() {
        // The granule formulation must be bit-identical to the classic
        // per-thread CUDA occupancy calculation on every NVIDIA preset.
        let p = shapes::star(Dim::D2, 1);
        let st = OptCombo::parse("ST").unwrap();
        let params = ParamSetting::default_for(&st);
        for id in GpuId::PAPER {
            let arch = GpuArch::preset(id);
            let prof = characterize(&p, 8192, &st, &params, &arch).unwrap();
            let occ = occupancy(&prof, &arch).unwrap();
            let threads = prof.threads_per_block.max(1);
            let legacy = [
                arch.max_threads_per_sm / threads,
                arch.regs_per_sm / (prof.regs_per_thread.max(1) * threads),
                arch.smem_per_sm
                    .checked_div(prof.smem_per_block)
                    .unwrap_or(u32::MAX),
                arch.max_blocks_per_sm,
            ]
            .into_iter()
            .min()
            .unwrap();
            assert_eq!(occ.blocks_per_sm, legacy, "{id}");
        }
    }

    #[test]
    fn wave64_allocates_whole_wavefront_slots() {
        // On a wavefront-64 part, a 32-thread block occupies the same
        // wavefront slots (threads and registers) as a 64-thread block,
        // so both fit the same number of blocks — the half-empty
        // wavefront just wastes lanes. On warp-32 NVIDIA the 32-thread
        // block fits twice as many blocks.
        let narrow = synthetic_profile(32, 64, 0);
        let wide = synthetic_profile(64, 64, 0);
        let mi100 = GpuArch::preset(GpuId::Mi100);
        let o_narrow = occupancy(&narrow, &mi100).unwrap();
        let o_wide = occupancy(&wide, &mi100).unwrap();
        assert_eq!(o_narrow.blocks_per_sm, o_wide.blocks_per_sm);
        assert!(o_narrow.fraction < o_wide.fraction);
        let v100 = v100();
        let v_narrow = occupancy(&narrow, &v100).unwrap();
        let v_wide = occupancy(&wide, &v100).unwrap();
        assert_eq!(v_narrow.blocks_per_sm, 2 * v_wide.blocks_per_sm);
    }

    #[test]
    fn smem_heavy_oc_valid_on_a100_crashes_on_amd_lds() {
        // Per-vendor OC validity: an ST staging footprint that fits
        // A100's 164 KiB shared memory exceeds the 64 KiB LDS ceiling on
        // every CDNA part — the same OC must crash there, not mispredict.
        let p = shapes::star(Dim::D3, 4);
        let st = OptCombo::parse("ST").unwrap();
        let mut params = ParamSetting::default_for(&st);
        params.block_x = 64;
        params.block_y = 8;
        let a100 = GpuArch::preset(GpuId::A100);
        let prof = characterize(&p, 512, &st, &params, &a100).unwrap();
        assert!(prof.smem_per_block > 64 * 1024);
        assert!(simulate(&p, 512, &st, &params, &a100).is_ok());
        for id in [GpuId::Mi50, GpuId::Mi100, GpuId::Mi210] {
            let arch = GpuArch::preset(id);
            assert_eq!(
                simulate(&p, 512, &st, &params, &arch).unwrap_err(),
                Crash::SharedMemoryOverflow,
                "{id}"
            );
        }
    }

    #[test]
    fn infinity_cache_speeds_up_fitting_working_sets() {
        // The RDNA2 part's L3 must make a cache-friendly sweep faster
        // than the identical architecture without the L3 level.
        let p = shapes::star(Dim::D2, 1);
        let params = ParamSetting::default_for(&OptCombo::BASE);
        let with_l3 = GpuArch::preset(GpuId::Rx6900Xt);
        let mut without_l3 = with_l3.clone();
        without_l3.l3_bytes = None;
        let analysis = PatternAnalysis::new(&p);
        let t_l3 = simulate_with(&analysis, 8192, &OptCombo::BASE, &params, &with_l3).unwrap();
        let t_plain =
            simulate_with(&analysis, 8192, &OptCombo::BASE, &params, &without_l3).unwrap();
        assert!(t_l3 < t_plain, "L3 {t_l3} !< no-L3 {t_plain}");
    }

    #[test]
    fn amd_launch_overhead_exceeds_nvidia() {
        // Herten et al.: HIP kernel launches cost more than CUDA ones.
        for amd in [GpuId::Mi50, GpuId::Mi100, GpuId::Mi210] {
            assert!(
                GpuArch::preset(amd).launch_us > GpuArch::preset(GpuId::V100).launch_us,
                "{amd}"
            );
        }
    }

    #[test]
    fn underutilization_penalizes_few_blocks() {
        // 2-D streaming with one chunk: only n / block_x blocks.
        let p = shapes::star(Dim::D2, 1);
        let st = OptCombo::parse("ST").unwrap();
        let mut few = ParamSetting::default_for(&st);
        few.block_x = 256;
        few.stream_tile = 512; // 8192/512 = 16 chunks
        let mut many = few;
        many.stream_tile = 64; // 128 chunks: more parallelism
        let t_few = simulate(&p, 8192, &st, &few, &v100()).unwrap();
        let t_many = simulate(&p, 8192, &st, &many, &v100()).unwrap();
        assert!(t_many < t_few, "many {t_many} !< few {t_few}");
    }
}

//! Kernel characterization: derive per-thread resources and per-point
//! traffic for a (stencil, OC, parameter setting) triple.
//!
//! This is the analytical stand-in for compiling and profiling a real CUDA
//! kernel. Every optimization of Table I perturbs the resource and traffic
//! estimates the way its real implementation does:
//!
//! * **ST** — planes are staged and reused along the streaming axis, so
//!   per-point DRAM reads drop to ≈1 plus a halo share; a barrier is paid
//!   per plane; shared memory holds `2r+1` planes.
//! * **BM/CM** — merging multiplies per-thread register live ranges. Block
//!   merging of adjacent points reuses overlapping neighbors (computed
//!   exactly from the pattern's self-overlap under shifts); merging along
//!   the innermost axis de-coalesces global accesses. Cyclic merging keeps
//!   coalescing and adds instruction-level parallelism but its strided
//!   points share no data.
//! * **RT** — accumulator registers replace shared-memory operand traffic
//!   for the streaming-axis column of the stencil.
//! * **PR** — a register double-buffer hides the inter-plane barrier.
//! * **TB** — fusing `t` time steps divides DRAM traffic by `t` while
//!   multiplying the staged working set and adding halo recomputation.

use crate::arch::GpuArch;
use crate::opts::{Merge, OptCombo};
use crate::params::ParamSetting;
use serde::{Deserialize, Serialize};
use stencilmart_obs::counters;
use stencilmart_stencil::pattern::{Dim, Offset, StencilPattern};

/// Bytes per element (the paper's stencils are double precision).
pub const ELEM_BYTES: f64 = 8.0;

/// The per-SM resource a single block oversubscribes at launch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LaunchResource {
    /// One block's register demand exceeds the SM's register file.
    Registers,
    /// One block's shared-memory allocation exceeds the SM's capacity
    /// (distinct from [`Crash::SharedMemoryOverflow`], which is the
    /// per-*block* allocation limit).
    SharedMemory,
}

/// Why a kernel configuration cannot execute (paper §III-A observes that
/// some OCs crash for some stencils).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Crash {
    /// The block's shared-memory allocation exceeds the per-block limit.
    SharedMemoryOverflow,
    /// Register demand is beyond what the compiler can spill around.
    RegisterOverflow,
    /// More than 1024 threads per block.
    BlockTooLarge,
    /// A single block oversubscribes a per-SM resource, so zero blocks
    /// fit and the launch fails — a structured crash, never `Ok` with
    /// zero occupancy.
    LaunchOversubscribed(LaunchResource),
    /// Zero resident blocks fit on an SM for any other reason.
    Unschedulable,
}

impl std::fmt::Display for Crash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Crash::SharedMemoryOverflow => "shared memory allocation exceeds per-block limit",
            Crash::RegisterOverflow => "register demand exceeds spillable range",
            Crash::BlockTooLarge => "thread block exceeds 1024 threads",
            Crash::LaunchOversubscribed(LaunchResource::Registers) => {
                "launch failure: one block's registers oversubscribe the SM register file"
            }
            Crash::LaunchOversubscribed(LaunchResource::SharedMemory) => {
                "launch failure: one block's shared memory oversubscribes the SM"
            }
            Crash::Unschedulable => "no resident block fits on an SM",
        };
        f.write_str(s)
    }
}

impl std::error::Error for Crash {}

/// The derived execution characteristics of one kernel configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Threads per block.
    pub threads_per_block: u32,
    /// Total blocks launched for one sweep.
    pub total_blocks: u64,
    /// Registers per thread (after the 255 cap; spilling accounted in
    /// traffic).
    pub regs_per_thread: u32,
    /// Shared memory per block in bytes.
    pub smem_per_block: u32,
    /// DRAM bytes moved per output point (reads + writes, after reuse,
    /// coalescing, and spill effects).
    pub dram_bytes_per_point: f64,
    /// Shared-memory bytes moved per output point.
    pub smem_bytes_per_point: f64,
    /// FLOPs per output point (including temporal-blocking redundancy).
    pub flops_per_point: f64,
    /// Instruction-level-parallelism factor (≥ 1) from unrolling/merging.
    pub ilp: f64,
    /// Barriers on each block's critical path for one sweep.
    pub syncs_per_block: u32,
    /// Fraction of barrier latency exposed (prefetching hides most of it).
    pub sync_exposure: f64,
    /// Effective time steps fused (divides the per-sweep cost when
    /// amortized over a multi-step run).
    pub time_tile: u32,
}

/// Count how many of the pattern's offsets remain distinct when `m` copies
/// shifted by `0..m` along `axis` are unioned. Block merging of `m`
/// adjacent outputs loads this union once instead of `m · nnz` operands.
pub fn shifted_union(p: &StencilPattern, axis: usize, m: u32) -> usize {
    shifted_union_of(p.points(), axis, m)
}

fn shifted_union_of(pts: &[Offset], axis: usize, m: u32) -> usize {
    match axis_rows(pts, axis, m) {
        Some(rows) => union_count(&rows, m),
        None => shifted_union_hash(pts, axis, m),
    }
}

/// Row-mask decomposition for bitset shifted unions: points sharing the
/// two non-`axis` coordinates form a *row*, and each row's set of
/// `axis` coordinates becomes one `u128` bitmask (bit `c - min`).
/// Unioning `m` shifted copies is then `mask | mask<<1 | …` per row —
/// word operations instead of per-point hash inserts. Returns `None`
/// when a shifted bit would overflow 128 bits (never for real stencils,
/// whose offsets span a few dozen cells at most); callers fall back to
/// the hash oracle.
fn axis_rows(pts: &[Offset], axis: usize, max_m: u32) -> Option<Vec<u128>> {
    let min = pts.iter().map(|o| o.c[axis]).min()?;
    let max = pts.iter().map(|o| o.c[axis]).max()?;
    if i64::from(max - min) + i64::from(max_m.max(1)) - 1 > 127 {
        return None;
    }
    let (u, v) = ((axis + 1) % 3, (axis + 2) % 3);
    let mut keyed: Vec<((i32, i32), u128)> = pts
        .iter()
        .map(|o| ((o.c[u], o.c[v]), 1u128 << (o.c[axis] - min) as u32))
        .collect();
    keyed.sort_unstable_by_key(|&(k, _)| k);
    let mut rows: Vec<u128> = Vec::new();
    let mut cur: Option<(i32, i32)> = None;
    for (k, bit) in keyed {
        match cur {
            Some(ck) if ck == k => *rows.last_mut().unwrap() |= bit,
            _ => {
                cur = Some(k);
                rows.push(bit);
            }
        }
    }
    Some(rows)
}

/// Count the union of `m` shifted copies from precomputed row masks:
/// per row, OR together the `m` shifts and popcount. Exact integer
/// arithmetic — bit-for-bit the same count as the hash oracle.
fn union_count(rows: &[u128], m: u32) -> usize {
    rows.iter()
        .map(|&mask| {
            let mut u = 0u128;
            for s in 0..m {
                u |= mask << s;
            }
            u.count_ones() as usize
        })
        .sum()
}

/// The original hash-set formulation, kept as the correctness oracle
/// and as the fallback for coordinate ranges the 128-bit masks cannot
/// represent.
fn shifted_union_hash(pts: &[Offset], axis: usize, m: u32) -> usize {
    let mut set: std::collections::HashSet<[i32; 3]> =
        std::collections::HashSet::with_capacity(pts.len() * m as usize);
    for shift in 0..m as i32 {
        for o in pts {
            let mut c = o.c;
            c[axis] += shift;
            set.insert(c);
        }
    }
    set.len()
}

/// Merge factors precomputed in the [`PatternAnalysis`] shifted-union
/// table: powers of two up to 8, the largest factor the parameter space
/// samples (`log2(m)` indexes the table).
const MERGE_FACTOR_SLOTS: usize = 4;

/// Pattern-only quantities consumed by [`characterize`], computed **once
/// per stencil** and reused across every (OC, parameter setting, GPU)
/// evaluation.
///
/// Profiling evaluates each stencil thousands of times (30 OCs × sampled
/// settings × 4 GPUs), and the uncached path re-derives the same
/// pattern-level facts on every call — most expensively the
/// [`shifted_union`] hash-set build for block merging and the
/// `distinct_rows` sort. This struct hoists all of them out of the hot
/// loop; [`characterize_with`] then costs only scalar arithmetic per
/// call. Every cached field is a deterministic function of the pattern,
/// so cached and uncached evaluation are bit-identical (pinned by the
/// `prop_cached` property suite).
#[derive(Debug, Clone, PartialEq)]
pub struct PatternAnalysis {
    dim: Dim,
    order: u8,
    nnz: usize,
    distinct_rows: usize,
    flops_per_point: usize,
    /// Points off the current streaming plane (`c[rank-1] != 0`): the
    /// streaming-axis column retiming converts to register accumulation.
    streaming_col_points: usize,
    /// `shifted_unions[axis][log2(m)]` for `m` ∈ {1, 2, 4, 8}.
    shifted_unions: [[usize; MERGE_FACTOR_SLOTS]; 3],
    /// The pattern's points, kept for out-of-table merge factors (the
    /// sampled parameter space never exceeds the table).
    points: Vec<Offset>,
}

impl PatternAnalysis {
    /// Analyze one pattern. Call once per stencil and share the result
    /// across all of its simulator evaluations.
    pub fn new(pattern: &StencilPattern) -> PatternAnalysis {
        let rank = pattern.dim().rank();
        let points = pattern.points().to_vec();
        let mut shifted_unions = [[0usize; MERGE_FACTOR_SLOTS]; 3];
        let max_m = 1 << (MERGE_FACTOR_SLOTS - 1);
        for (axis, row) in shifted_unions.iter_mut().enumerate() {
            // One row-mask build per axis, reused across all four merge
            // factors — the old path rebuilt the point set per (axis,
            // factor) entry, 12 hash-set constructions per analysis.
            match axis_rows(&points, axis, max_m) {
                Some(rows) => {
                    for (slot, entry) in row.iter_mut().enumerate() {
                        *entry = union_count(&rows, 1 << slot);
                    }
                }
                None => {
                    for (slot, entry) in row.iter_mut().enumerate() {
                        *entry = shifted_union_hash(&points, axis, 1 << slot);
                    }
                }
            }
        }
        let streaming_col_points = points.iter().filter(|o| o.c[rank - 1] != 0).count();
        counters::PATTERN_ANALYSES.inc();
        PatternAnalysis {
            dim: pattern.dim(),
            order: pattern.order(),
            nnz: pattern.nnz(),
            distinct_rows: pattern.distinct_rows(),
            flops_per_point: pattern.flops_per_point(),
            streaming_col_points,
            shifted_unions,
            points,
        }
    }

    /// Grid dimensionality of the analyzed pattern.
    #[inline]
    pub fn dim(&self) -> Dim {
        self.dim
    }

    /// Stencil order of the analyzed pattern.
    #[inline]
    pub fn order(&self) -> u8 {
        self.order
    }

    /// Accessed points (central point included) of the analyzed pattern.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Distinct rows the pattern touches — each is one load stream, and
    /// `distinct_rows × grid-row bytes` is the working set the cache
    /// models (L2 reuse, Infinity-Cache L3) compare against capacity.
    #[inline]
    pub fn distinct_rows(&self) -> usize {
        self.distinct_rows
    }

    /// Cached [`shifted_union`]: table lookup for the power-of-two merge
    /// factors the parameter space samples, fresh computation otherwise.
    #[inline]
    pub fn shifted_union(&self, axis: usize, m: u32) -> usize {
        let slot = m.trailing_zeros() as usize;
        if axis < 3 && m.is_power_of_two() && slot < MERGE_FACTOR_SLOTS {
            self.shifted_unions[axis][slot]
        } else {
            shifted_union_of(&self.points, axis, m)
        }
    }
}

/// Characterize one configuration. Returns the kernel profile or the crash
/// that prevents execution.
///
/// Convenience wrapper over [`characterize_with`] that derives the
/// pattern analysis on the spot; callers evaluating many configurations
/// of the same stencil should build one [`PatternAnalysis`] and reuse it.
pub fn characterize(
    pattern: &StencilPattern,
    grid: usize,
    oc: &OptCombo,
    params: &ParamSetting,
    arch: &GpuArch,
) -> Result<KernelProfile, Crash> {
    characterize_with(&PatternAnalysis::new(pattern), grid, oc, params, arch)
}

/// Characterize one configuration from a precomputed [`PatternAnalysis`]
/// — the cheap per-(OC, params, arch) phase of the two-phase model.
pub fn characterize_with(
    analysis: &PatternAnalysis,
    grid: usize,
    oc: &OptCombo,
    params: &ParamSetting,
    arch: &GpuArch,
) -> Result<KernelProfile, Crash> {
    let rank = analysis.dim.rank();
    let r = analysis.order as f64;
    let nnz = analysis.nnz as f64;
    let n = grid as f64;
    let threads = params.threads_per_block();
    if threads > 1024 {
        return Err(Crash::BlockTooLarge);
    }
    let m = params.merge_factor.max(1) as f64;
    let t = params.time_tile.max(1) as f64;

    // ---- Register estimate -------------------------------------------------
    // Base: address arithmetic + a coefficient/operand window that grows
    // with order, pattern size, and the number of distinct rows (each row
    // needs its own base-address arithmetic). The operand-window term
    // saturates: compilers never hold hundreds of operands live at once.
    // Because occupancy is a step function of the register count, these
    // smooth per-pattern differences flip occupancy cliffs differently
    // for each OC's register adders — a major source of "no single OC
    // fits all".
    let rows = analysis.distinct_rows as f64;
    let mut regs = 24.0 + 2.0 * r + 0.35 * nnz.min(150.0) + 0.6 * rows.min(60.0);
    match oc.merge {
        Merge::Block => regs += (m - 1.0) * (6.0 + r),
        Merge::Cyclic => regs += (m - 1.0) * (8.0 + r),
        Merge::None => {}
    }
    if oc.rt {
        // Accumulators for the decomposed sub-computations.
        regs += 4.0 * r;
    }
    if oc.pr {
        // Double buffer for the prefetched plane column.
        regs += 6.0 + 3.0 * r;
    }
    if oc.tb {
        regs *= 1.0 + 0.3 * (t - 1.0);
    }
    regs += 1.5 * (params.unroll as f64).log2();
    // ptxas allocates in granules of 4.
    regs = (regs / 4.0).ceil() * 4.0;
    if regs > 400.0 {
        return Err(Crash::RegisterOverflow);
    }
    // ptxas caps the per-thread allocation so that (a) the ISA's 255-
    // register limit holds and (b) at least one block fits in the SM's
    // register file; everything beyond the cap spills to local memory.
    let allowed = (arch.regs_per_sm as f64 / threads as f64).clamp(16.0, 255.0);
    let spilled = (regs - allowed).max(0.0);
    let regs_capped = regs.min(allowed) as u32;

    // ---- Shared memory and block/plane geometry ----------------------------
    let halo = 2.0 * r * if oc.tb { t } else { 1.0 };
    let (smem, total_blocks, planes_per_block): (f64, f64, f64) = if oc.st {
        // Streaming: the block owns a cross-section pencil and walks
        // `stream_tile` planes of the streaming (outermost) axis.
        let cross_x = params.block_x as f64 * if params.merge_dim == 0 { m } else { 1.0 };
        let cross_y = if rank == 3 {
            params.block_y as f64 * if params.merge_dim == 1 { m } else { 1.0 }
        } else {
            1.0
        };
        // Streaming stages a wavefront window: 2r+1 planes, plus two per
        // extra fused time step (AN5D-style streaming temporal blocking
        // keeps the window linear in t rather than multiplicative).
        let planes = 2.0 * r + 1.0 + 2.0 * (t - 1.0);
        let smem = if params.use_smem {
            planes * (cross_x + halo) * (if rank == 3 { cross_y + halo } else { 1.0 }) * ELEM_BYTES
        } else {
            0.0
        };
        let cross_sections = (n.powi(rank as i32 - 1) / (cross_x * cross_y)).ceil();
        let chunks = (n / params.stream_tile as f64).ceil().max(1.0);
        (smem, cross_sections * chunks, params.stream_tile as f64)
    } else if oc.tb {
        // Temporal blocking without streaming: the whole spatio-temporal
        // tile (with halos grown by r·t) must be staged in shared memory.
        // For high-order 3-D stencils this overflows — matching the
        // paper's observation that TB without ST crashes there.
        let tile_x = params.block_x as f64 * if params.merge_dim == 0 { m } else { 1.0 };
        let tile_y = if rank >= 2 {
            params.block_y as f64 * if params.merge_dim == 1 { m } else { 1.0 }
        } else {
            1.0
        };
        let tile_z = if rank == 3 { 4.0 } else { 1.0 };
        let smem = (tile_x + halo)
            * (if rank >= 2 { tile_y + halo } else { 1.0 })
            * (if rank == 3 { tile_z + halo } else { 1.0 })
            * ELEM_BYTES;
        let pts_per_block = tile_x * tile_y * tile_z;
        (smem, (n.powi(rank as i32) / pts_per_block).ceil(), 1.0)
    } else {
        let pts_per_block = threads as f64 * m;
        (0.0, (n.powi(rank as i32) / pts_per_block).ceil(), 1.0)
    };
    if smem > arch.smem_per_block as f64 {
        return Err(Crash::SharedMemoryOverflow);
    }

    // ---- DRAM traffic per point --------------------------------------------
    // Temporal blocking widens every halo by the fused depth: the skirt
    // cells are re-loaded (and re-computed) per fused step, which is what
    // keeps TB from being a free t× traffic win.
    let tb_mult = if oc.tb { t } else { 1.0 };
    let mut reads = if oc.st {
        // Each point is loaded ~once; halo cells re-load at tile borders
        // and at streaming-chunk boundaries (concurrent streaming).
        let cross_x = params.block_x as f64 * if params.merge_dim == 0 { m } else { 1.0 };
        let cross_y = if rank == 3 {
            params.block_y as f64
        } else {
            f64::INFINITY
        };
        let halo_share = 2.0 * r * tb_mult * (1.0 / cross_x + 1.0 / cross_y);
        let chunk_share = 2.0 * r * tb_mult / params.stream_tile as f64;
        let stage_penalty = if params.use_smem {
            0.0
        } else {
            // Register/L2 staging leaks some reuse for wide patterns.
            0.06 * (rows - 1.0).max(0.0)
        };
        1.0 + halo_share + chunk_share + stage_penalty
    } else if oc.tb {
        // Shared-memory spatio-temporal tile: each point loads once per
        // tile, plus a skirt of width r·t around every tile face.
        let tile_x = params.block_x as f64 * if params.merge_dim == 0 { m } else { 1.0 };
        let tile_y = if rank >= 2 {
            params.block_y as f64
        } else {
            f64::INFINITY
        };
        let tile_z = if rank == 3 { 4.0 } else { f64::INFINITY };
        1.0 + 2.0 * r * tb_mult * (1.0 / tile_x + 1.0 / tile_y + 1.0 / tile_z)
    } else {
        // Unit-stride neighbors hit the same cache lines; each distinct
        // row costs roughly one load stream.
        let base = rows + 0.15 * (nnz - rows);
        // Cross-row reuse is captured when the row working set fits in a
        // healthy fraction of L2 (large-L2 parts like A100 benefit most).
        let row_ws = rows * n * ELEM_BYTES;
        let reuse = if rank == 2 && row_ws < 0.5 * arch.l2_bytes as f64 {
            1.0 + (base - 1.0) * 0.35
        } else {
            base
        };
        // Block merging unions overlapping operands of adjacent outputs.
        if oc.merge == Merge::Block {
            let union = analysis.shifted_union(params.merge_dim as usize, params.merge_factor);
            reuse * (union as f64 / (m * nnz)).min(1.0)
        } else {
            reuse
        }
    };

    // Misaligned halo accesses waste part of each 32-byte sector.
    reads *= 1.0 + 0.05 * r;
    // Block merging along the innermost axis breaks coalescing: threads
    // become strided by m, inflating transactions (paper §II-B2).
    let coalesce = if oc.merge == Merge::Block && params.merge_dim == 0 {
        m.min(4.0)
    } else {
        1.0
    };
    reads *= coalesce;
    let mut writes = coalesce;
    // Register spills round-trip through local memory (DRAM-backed).
    reads += spilled * 0.12;
    // Temporal blocking amortizes global traffic over the fused steps.
    // All quantities in this profile are *per time step*: the t× halo
    // terms above divide back down to per-step skirt overhead.
    if oc.tb {
        reads /= t;
        writes /= t;
        // Wavefront traversal streams less regularly than a plain sweep:
        // DRAM sectors are re-touched across the skewed tile fronts, so
        // the ideal 1/t reduction is not fully realised (AN5D reports
        // diminishing returns with blocking degree for the same reason).
        reads *= 1.0 + 0.25 * (t - 1.0).min(2.0);
    }
    let dram_bytes = (reads + writes) * ELEM_BYTES;

    // ---- Shared-memory traffic per point ------------------------------------
    let mut smem_ops = if smem > 0.0 { nnz + 1.0 } else { 0.0 };
    if oc.rt && smem_ops > 0.0 {
        // Retiming converts the streaming-axis column reads into register
        // accumulation; the benefit grows with order (paper §II-B4).
        let col_pts = analysis.streaming_col_points as f64;
        smem_ops -= col_pts * 0.8;
    }
    // Strided cyclic access patterns cause bank conflicts in the staged
    // tile.
    if oc.merge == Merge::Cyclic && smem_ops > 0.0 {
        smem_ops *= 1.0 + 0.35 * m.log2();
    }
    let smem_bytes = smem_ops.max(0.0) * ELEM_BYTES;

    // ---- Compute ------------------------------------------------------------
    let mut flops = analysis.flops_per_point as f64;
    if oc.rt {
        // Re-association removes some common subexpressions.
        flops *= 0.92;
    }
    if oc.tb {
        // Halo recomputation: each fused step recomputes a skirt of width
        // r around the tile cross-section.
        let tile_min = if oc.st {
            params.block_x as f64 * m
        } else {
            params.block_x as f64
        };
        let redundancy = (r * (t - 1.0) * 2.0 / tile_min).min(1.5);
        flops *= 1.0 + redundancy;
    }
    let ilp = ((1.0
        + 0.08 * (params.unroll as f64).log2()
        + if oc.merge == Merge::Cyclic {
            0.08 * m.log2()
        } else {
            0.0
        })
        // Cross-step dependencies in the fused wavefront limit issue
        // parallelism.
        * if oc.tb { 0.9 } else { 1.0 })
    .min(1.35);

    // ---- Synchronization -----------------------------------------------------
    let syncs = if oc.st { planes_per_block as u32 } else { 1 };
    let sync_exposure = if oc.pr { 0.3 } else { 1.0 };

    Ok(KernelProfile {
        threads_per_block: threads,
        total_blocks: total_blocks as u64,
        regs_per_thread: regs_capped,
        smem_per_block: smem as u32,
        dram_bytes_per_point: dram_bytes,
        smem_bytes_per_point: smem_bytes,
        flops_per_point: flops,
        ilp,
        syncs_per_block: syncs,
        sync_exposure,
        time_tile: params.time_tile.max(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GpuId;
    use stencilmart_stencil::pattern::Dim;
    use stencilmart_stencil::shapes;

    fn v100() -> GpuArch {
        GpuArch::preset(GpuId::V100)
    }

    fn base_params() -> ParamSetting {
        ParamSetting::default_for(&OptCombo::BASE)
    }

    #[test]
    fn shifted_union_counts_overlap() {
        let p = shapes::star(Dim::D2, 1); // 5 points
                                          // Shifting by one along x: union of two 5-point stars sharing 2
                                          // points (centre column overlap: (0,0)&(1,0) coincide etc.)
        let u = shifted_union(&p, 0, 2);
        assert_eq!(u, 8); // 10 - 2 overlapping
        assert_eq!(shifted_union(&p, 0, 1), 5);
    }

    #[test]
    fn bitset_union_matches_hash_oracle() {
        // Every (pattern, axis, m) the parameter space can produce, and
        // then some: the bitset word path must agree exactly with the
        // hash-set oracle, including non-power-of-two factors.
        let patterns = [
            shapes::star(Dim::D1, 1),
            shapes::star(Dim::D2, 1),
            shapes::star(Dim::D2, 4),
            shapes::box_(Dim::D2, 2),
            shapes::star(Dim::D3, 2),
            shapes::box_(Dim::D3, 3),
        ];
        for p in &patterns {
            for axis in 0..3 {
                for m in 0..=9u32 {
                    assert_eq!(
                        shifted_union_of(p.points(), axis, m),
                        shifted_union_hash(p.points(), axis, m),
                        "pattern {:?} axis {axis} m {m}",
                        p.dim(),
                    );
                }
            }
        }
    }

    #[test]
    fn wide_coordinate_ranges_fall_back_to_hash() {
        // A 200-cell span cannot be a 128-bit mask: axis_rows must
        // refuse and the public function must still answer via the
        // oracle path.
        let pts = [Offset { c: [-100, 0, 0] }, Offset { c: [100, 0, 0] }];
        assert!(axis_rows(&pts, 0, 8).is_none());
        assert_eq!(shifted_union_of(&pts, 0, 2), 4);
        assert_eq!(shifted_union_of(&pts, 1, 2), 4);
        // Empty point sets short-circuit to zero either way.
        assert_eq!(shifted_union_of(&[], 0, 4), 0);
    }

    #[test]
    fn analysis_table_matches_fresh_computation() {
        let p = shapes::box_(Dim::D3, 2);
        let analysis = PatternAnalysis::new(&p);
        for axis in 0..3 {
            for slot in 0..MERGE_FACTOR_SLOTS {
                let m = 1u32 << slot;
                assert_eq!(
                    analysis.shifted_union(axis, m),
                    shifted_union_hash(p.points(), axis, m),
                    "axis {axis} m {m}"
                );
            }
        }
    }

    #[test]
    fn naive_kernel_is_row_bound() {
        let p = shapes::star(Dim::D2, 1);
        let prof = characterize(&p, 8192, &OptCombo::BASE, &base_params(), &v100()).unwrap();
        // 3 distinct rows → a handful of bytes per point, far below
        // nnz × 8.
        assert!(prof.dram_bytes_per_point > 2.0 * ELEM_BYTES);
        assert!(prof.dram_bytes_per_point < 5.0 * ELEM_BYTES);
        assert_eq!(prof.syncs_per_block, 1);
    }

    #[test]
    fn streaming_reduces_traffic() {
        let p = shapes::box_(Dim::D3, 2);
        let st = OptCombo::parse("ST").unwrap();
        let mut sp = ParamSetting::default_for(&st);
        sp.block_y = 8;
        let naive = characterize(&p, 512, &OptCombo::BASE, &base_params(), &v100()).unwrap();
        let streamed = characterize(&p, 512, &st, &sp, &v100()).unwrap();
        assert!(
            streamed.dram_bytes_per_point < 0.5 * naive.dram_bytes_per_point,
            "{} !< {}",
            streamed.dram_bytes_per_point,
            naive.dram_bytes_per_point
        );
        assert!(streamed.syncs_per_block > 1);
        assert!(streamed.smem_per_block > 0);
    }

    #[test]
    fn tb_without_st_crashes_for_high_order_3d() {
        // Paper §III-A: temporal blocking fails for 3-D order-4 stencils
        // without streaming.
        let p = shapes::box_(Dim::D3, 4);
        let tb = OptCombo::parse("TB").unwrap();
        let mut params = ParamSetting::default_for(&tb);
        params.block_x = 32;
        params.block_y = 4;
        params.time_tile = 2;
        let res = characterize(&p, 512, &tb, &params, &v100());
        assert_eq!(res.unwrap_err(), Crash::SharedMemoryOverflow);
        // ...but succeeds with streaming enabled.
        let st_tb = OptCombo::parse("ST_TB").unwrap();
        let mut sp = ParamSetting::default_for(&st_tb);
        sp.block_x = 32;
        sp.block_y = 4;
        sp.time_tile = 2;
        assert!(characterize(&p, 512, &st_tb, &sp, &v100()).is_ok());
    }

    #[test]
    fn innermost_block_merging_decoalesces() {
        let p = shapes::star(Dim::D2, 1);
        let bm = OptCombo::parse("BM").unwrap();
        let mut inner = ParamSetting::default_for(&bm);
        inner.merge_factor = 4;
        inner.merge_dim = 0;
        let mut outer = inner;
        outer.merge_dim = 1;
        let pi = characterize(&p, 8192, &bm, &inner, &v100()).unwrap();
        let po = characterize(&p, 8192, &bm, &outer, &v100()).unwrap();
        assert!(pi.dram_bytes_per_point > po.dram_bytes_per_point);
    }

    #[test]
    fn merging_raises_register_pressure() {
        let p = shapes::box_(Dim::D2, 3);
        let cm = OptCombo::parse("CM").unwrap();
        let mut params = ParamSetting::default_for(&cm);
        params.merge_factor = 8;
        let merged = characterize(&p, 8192, &cm, &params, &v100()).unwrap();
        let plain = characterize(&p, 8192, &OptCombo::BASE, &base_params(), &v100()).unwrap();
        assert!(merged.regs_per_thread > plain.regs_per_thread);
    }

    #[test]
    fn retiming_cuts_shared_traffic_and_flops() {
        let p = shapes::star(Dim::D3, 4);
        let st = OptCombo::parse("ST").unwrap();
        let st_rt = OptCombo::parse("ST_RT").unwrap();
        let mut params = ParamSetting::default_for(&st);
        params.block_x = 32;
        params.block_y = 4;
        let a = characterize(&p, 512, &st, &params, &v100()).unwrap();
        let b = characterize(&p, 512, &st_rt, &params, &v100()).unwrap();
        assert!(b.smem_bytes_per_point < a.smem_bytes_per_point);
        assert!(b.flops_per_point < a.flops_per_point);
        assert!(b.regs_per_thread > a.regs_per_thread);
    }

    #[test]
    fn prefetching_hides_sync() {
        let p = shapes::star(Dim::D3, 1);
        let st = OptCombo::parse("ST").unwrap();
        let st_pr = OptCombo::parse("ST_PR").unwrap();
        let params = ParamSetting::default_for(&st);
        let a = characterize(&p, 512, &st, &params, &v100()).unwrap();
        let b = characterize(&p, 512, &st_pr, &params, &v100()).unwrap();
        assert!(b.sync_exposure < a.sync_exposure);
        assert!(b.regs_per_thread > a.regs_per_thread);
    }

    #[test]
    fn temporal_blocking_divides_dram_traffic() {
        let p = shapes::star(Dim::D2, 1);
        let st = OptCombo::parse("ST").unwrap();
        let st_tb = OptCombo::parse("ST_TB").unwrap();
        let params = ParamSetting::default_for(&st);
        let mut tb_params = ParamSetting::default_for(&st_tb);
        tb_params.time_tile = 2;
        let a = characterize(&p, 8192, &st, &params, &v100()).unwrap();
        let b = characterize(&p, 8192, &st_tb, &tb_params, &v100()).unwrap();
        assert!(b.dram_bytes_per_point < a.dram_bytes_per_point);
        assert!(b.flops_per_point > a.flops_per_point);
    }

    #[test]
    fn huge_blocks_crash() {
        let p = shapes::star(Dim::D2, 1);
        let mut params = base_params();
        params.block_x = 128;
        params.block_y = 8; // 1024 threads: legal
        assert!(characterize(&p, 8192, &OptCombo::BASE, &params, &v100()).is_ok());
        // 2048 threads per block is illegal on every generation.
        let mut big = params;
        big.block_x = 256;
        assert_eq!(
            characterize(&p, 8192, &OptCombo::BASE, &big, &v100()).unwrap_err(),
            Crash::BlockTooLarge
        );
    }
}

//! RAII hierarchical span timers with thread-aware aggregation and a
//! bounded `chrome://tracing` event buffer.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Hard cap on buffered trace events; completions beyond it only bump
/// the dropped-event counter so long runs cannot exhaust memory.
pub const MAX_TRACE_EVENTS: usize = 200_000;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enable or disable span recording and counter updates.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether observability collection is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Process trace epoch: all trace timestamps are offsets from the first
/// observability call in the process.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Small dense per-thread id (0 = first thread to record a span).
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// Stack of full span paths open on this thread.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated statistics for one span path.
#[derive(Debug, Clone)]
pub struct SpanStat {
    /// Full `parent/child` path of the span.
    pub path: String,
    /// Completed spans at this path.
    pub count: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u128,
    /// Shortest single span, nanoseconds.
    pub min_ns: u128,
    /// Longest single span, nanoseconds.
    pub max_ns: u128,
    /// Distinct threads that completed spans at this path.
    pub threads: usize,
}

impl SpanStat {
    /// Mean wall time per span, nanoseconds.
    pub fn mean_ns(&self) -> u128 {
        self.total_ns / u128::from(self.count.max(1))
    }

    /// The last `/`-separated segment of the path (the stage name).
    pub fn stage(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }
}

#[derive(Debug, Clone, Default)]
struct Agg {
    count: u64,
    total_ns: u128,
    min_ns: u128,
    max_ns: u128,
    threads: BTreeSet<u64>,
}

/// One completed span as a `chrome://tracing` complete ("X") event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Full span path.
    pub name: String,
    /// Recording thread id.
    pub tid: u64,
    /// Start offset from the process trace epoch, microseconds.
    pub ts_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
}

#[derive(Default)]
struct Registry {
    aggregates: BTreeMap<String, Agg>,
    events: Vec<TraceEvent>,
    dropped: u64,
}

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// An open span. Dropping it records the elapsed wall time under its
/// hierarchical path. Not `Send`: a span must end on the thread that
/// opened it (its path lives on that thread's stack).
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct Span {
    /// `None` when collection was disabled at creation (inert guard).
    start: Option<Instant>,
    path: String,
    _not_send: PhantomData<*const ()>,
}

/// Open a span named `name`, nested under the innermost span already
/// open on this thread. Returns an inert guard when collection is
/// disabled.
pub fn span(name: impl Into<String>) -> Span {
    if !enabled() {
        return Span {
            start: None,
            path: String::new(),
            _not_send: PhantomData,
        };
    }
    let name = name.into();
    let path = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let path = match s.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name,
        };
        s.push(path.clone());
        path
    });
    epoch(); // pin the trace epoch before the span starts
    Span {
        start: Some(Instant::now()),
        path,
        _not_send: PhantomData,
    }
}

/// Run `f` inside a span named `name` and return its result.
pub fn time<R>(name: impl Into<String>, f: impl FnOnce() -> R) -> R {
    let _span = span(name);
    f()
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur = start.elapsed();
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
        let tid = TID.with(|t| *t);
        let dur_ns = dur.as_nanos();
        let ts_us = start.saturating_duration_since(epoch()).as_secs_f64() * 1e6;
        let mut reg = lock();
        let agg = reg.aggregates.entry(self.path.clone()).or_default();
        agg.count += 1;
        agg.total_ns += dur_ns;
        agg.min_ns = if agg.count == 1 {
            dur_ns
        } else {
            agg.min_ns.min(dur_ns)
        };
        agg.max_ns = agg.max_ns.max(dur_ns);
        agg.threads.insert(tid);
        if reg.events.len() < MAX_TRACE_EVENTS {
            let name = std::mem::take(&mut self.path);
            reg.events.push(TraceEvent {
                name,
                tid,
                ts_us,
                dur_us: dur.as_secs_f64() * 1e6,
            });
        } else {
            reg.dropped += 1;
        }
    }
}

/// Snapshot of the per-path aggregates, sorted by path.
pub fn span_stats() -> Vec<SpanStat> {
    lock()
        .aggregates
        .iter()
        .map(|(path, a)| SpanStat {
            path: path.clone(),
            count: a.count,
            total_ns: a.total_ns,
            min_ns: a.min_ns,
            max_ns: a.max_ns,
            threads: a.threads.len(),
        })
        .collect()
}

/// Snapshot of the buffered trace events, in completion order.
pub fn trace_events() -> Vec<TraceEvent> {
    lock().events.clone()
}

/// Number of trace events dropped after the buffer filled.
pub fn dropped_events() -> u64 {
    lock().dropped
}

/// Clear span aggregates, trace events, and the dropped-event count.
pub fn reset_spans() {
    let mut reg = lock();
    reg.aggregates.clear();
    reg.events.clear();
    reg.dropped = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::test_guard as test_lock;

    #[test]
    fn spans_nest_and_aggregate() {
        let _guard = test_lock();
        reset_spans();
        {
            let _a = span("outer");
            for _ in 0..3 {
                let _b = span("inner");
            }
        }
        let stats = span_stats();
        let outer = stats.iter().find(|s| s.path == "outer").unwrap();
        let inner = stats.iter().find(|s| s.path == "outer/inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 3);
        assert_eq!(inner.stage(), "inner");
        assert!(inner.min_ns <= inner.max_ns);
        assert!(inner.total_ns >= inner.max_ns);
        assert_eq!(trace_events().len(), 4);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = test_lock();
        reset_spans();
        set_enabled(false);
        {
            let _a = span("ghost");
        }
        set_enabled(true);
        assert!(span_stats().is_empty());
        assert!(trace_events().is_empty());
    }

    #[test]
    fn sibling_spans_share_a_path() {
        let _guard = test_lock();
        reset_spans();
        time("root", || {
            time("leaf", || ());
            time("leaf", || ());
        });
        let stats = span_stats();
        let leaf = stats.iter().find(|s| s.path == "root/leaf").unwrap();
        assert_eq!(leaf.count, 2);
        assert_eq!(leaf.threads, 1);
    }

    #[test]
    fn worker_thread_spans_root_at_the_thread() {
        let _guard = test_lock();
        reset_spans();
        let _outer = span("driver");
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = span("worker_stage");
            });
        });
        drop(_outer);
        let stats = span_stats();
        // The worker thread has its own (empty) stack, so its span is a
        // root path, not nested under "driver".
        assert!(stats.iter().any(|s| s.path == "worker_stage"));
        assert!(stats.iter().any(|s| s.path == "driver"));
    }

    #[test]
    fn trace_timestamps_are_ordered() {
        let _guard = test_lock();
        reset_spans();
        time("first", || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        time("second", || ());
        let ev = trace_events();
        let first = ev.iter().find(|e| e.name == "first").unwrap();
        let second = ev.iter().find(|e| e.name == "second").unwrap();
        assert!(second.ts_us >= first.ts_us);
        assert!(first.dur_us >= 1_000.0, "slept 2ms, got {}us", first.dur_us);
    }
}

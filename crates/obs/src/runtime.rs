//! Pipeline-wide worker-count resolution.
//!
//! Every thread pool in the workspace — the ML fold/model parallelism,
//! the blocked GEMM row partitioning, and the profiler's per-stencil
//! corpus partitioning — sizes itself through [`worker_count`], so the
//! single `STENCILMART_THREADS` environment variable controls the whole
//! pipeline.

/// Number of worker threads to use: `STENCILMART_THREADS` when set to a
/// parseable value ≥ 1, otherwise `available_parallelism()` (or 1 when
/// even that is unavailable).
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("STENCILMART_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_override_and_fallbacks() {
        let _guard = crate::test_guard();
        std::env::set_var("STENCILMART_THREADS", "3");
        assert_eq!(worker_count(), 3);
        std::env::set_var("STENCILMART_THREADS", "0");
        assert!(worker_count() >= 1);
        std::env::set_var("STENCILMART_THREADS", "many");
        assert!(worker_count() >= 1);
        std::env::remove_var("STENCILMART_THREADS");
        assert!(worker_count() >= 1);
    }
}

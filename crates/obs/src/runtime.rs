//! Pipeline-wide runtime knobs: worker-count and SIMD-path resolution.
//!
//! Every thread pool in the workspace — the ML fold/model parallelism,
//! the blocked GEMM row partitioning, and the profiler's per-stencil
//! corpus partitioning — sizes itself through [`worker_count`], so the
//! single `STENCILMART_THREADS` environment variable controls the whole
//! pipeline. Likewise every runtime-dispatched SIMD kernel resolves its
//! instruction-set tier through [`simd_isa`], so the single
//! `STENCILMART_NO_SIMD` variable forces the scalar fallback everywhere
//! at once (and the run manifest records which tier actually ran).

/// Number of worker threads to use: `STENCILMART_THREADS` when set to a
/// parseable value ≥ 1, otherwise `available_parallelism()` (or 1 when
/// even that is unavailable).
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("STENCILMART_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Depth of the streamed-NN prefetch channel (decoded chunks the
/// background reader may run ahead of the trainer, each one shard of
/// rows resident): `STENCILMART_PREFETCH` when set to a parseable value
/// in `1..=64`, otherwise 2 — one chunk being consumed, one decoding
/// behind it (double buffering). Values outside the range fall back to
/// the default rather than erroring, matching [`worker_count`]; the cap
/// keeps a typo like `6400` from silently buying a resident dataset.
/// Re-read on every call so tests can flip it at runtime.
pub fn prefetch_depth() -> usize {
    if let Ok(v) = std::env::var("STENCILMART_PREFETCH") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if (1..=64).contains(&n) {
                return n;
            }
        }
    }
    2
}

/// Instruction-set tier a runtime-dispatched kernel may use. Ordered:
/// every tier implies the ones below it, so kernels that only have an
/// AVX2 variant run it on `Avx512` hosts too (`>=` comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdIsa {
    /// Portable scalar fallback (also the correctness oracle).
    Scalar,
    /// 256-bit AVX2 + FMA.
    Avx2,
    /// 512-bit AVX-512F (implies AVX2 + FMA on every real part).
    Avx512,
}

impl SimdIsa {
    /// Stable lowercase name, used in manifests and bench reports.
    pub fn name(self) -> &'static str {
        match self {
            SimdIsa::Scalar => "scalar",
            SimdIsa::Avx2 => "avx2",
            SimdIsa::Avx512 => "avx512",
        }
    }

    /// Ordinal for gauge export (0 = scalar, 1 = avx2, 2 = avx512).
    pub fn ordinal(self) -> u64 {
        match self {
            SimdIsa::Scalar => 0,
            SimdIsa::Avx2 => 1,
            SimdIsa::Avx512 => 2,
        }
    }
}

/// What the hardware supports, probed once per process (the probe
/// itself is a handful of `cpuid` leaves, but caching it keeps the
/// dispatch check on kernel entry points to one atomic load plus the
/// env-var read below).
fn probed_isa() -> SimdIsa {
    static PROBE: std::sync::OnceLock<SimdIsa> = std::sync::OnceLock::new();
    *PROBE.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return SimdIsa::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return SimdIsa::Avx2;
            }
        }
        SimdIsa::Scalar
    })
}

/// The instruction-set tier runtime-dispatched kernels should use right
/// now: the cached hardware probe, unless `STENCILMART_NO_SIMD` is set
/// to anything other than `0`/empty, which forces [`SimdIsa::Scalar`]
/// (the knob tests and CI use to keep the fallback paths green on wide
/// hosts). The env var is re-read on every call — like
/// [`worker_count`] — so tests can flip it at runtime.
pub fn simd_isa() -> SimdIsa {
    if let Ok(v) = std::env::var("STENCILMART_NO_SIMD") {
        let v = v.trim();
        if !v.is_empty() && v != "0" {
            return SimdIsa::Scalar;
        }
    }
    probed_isa()
}

/// Peak resident-set size of this process in bytes, read from the
/// `VmHWM` line of `/proc/self/status`. Returns 0 on platforms without
/// that interface (or if the file is unreadable/ill-formed), so callers
/// can always record it and consumers treat 0 as "unknown".
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse::<u64>()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
    }
    0
}

/// Re-read [`peak_rss_bytes`] and store it in the
/// [`crate::counters::PEAK_RSS_BYTES`] gauge, returning the fresh value.
/// Report rendering calls this so every exported metrics document
/// carries the true process high-water mark at export time.
pub fn refresh_peak_rss() -> u64 {
    let v = peak_rss_bytes();
    crate::counters::PEAK_RSS_BYTES.set(v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_override_and_fallbacks() {
        let _guard = crate::test_guard();
        std::env::set_var("STENCILMART_THREADS", "3");
        assert_eq!(worker_count(), 3);
        std::env::set_var("STENCILMART_THREADS", "0");
        assert!(worker_count() >= 1);
        std::env::set_var("STENCILMART_THREADS", "many");
        assert!(worker_count() >= 1);
        std::env::remove_var("STENCILMART_THREADS");
        assert!(worker_count() >= 1);
    }

    #[test]
    fn prefetch_depth_is_validated_and_defaults_to_two() {
        let _guard = crate::test_guard();
        std::env::remove_var("STENCILMART_PREFETCH");
        assert_eq!(prefetch_depth(), 2);
        std::env::set_var("STENCILMART_PREFETCH", "5");
        assert_eq!(prefetch_depth(), 5);
        for bad in ["0", "65", "lots", "-1", ""] {
            std::env::set_var("STENCILMART_PREFETCH", bad);
            assert_eq!(prefetch_depth(), 2, "invalid value {bad:?} must fall back");
        }
        std::env::remove_var("STENCILMART_PREFETCH");
    }

    #[test]
    fn simd_isa_honors_no_simd_override() {
        let _guard = crate::test_guard();
        std::env::remove_var("STENCILMART_NO_SIMD");
        let probed = simd_isa();
        std::env::set_var("STENCILMART_NO_SIMD", "1");
        assert_eq!(simd_isa(), SimdIsa::Scalar);
        // `0` and empty mean "not disabled".
        std::env::set_var("STENCILMART_NO_SIMD", "0");
        assert_eq!(simd_isa(), probed);
        std::env::set_var("STENCILMART_NO_SIMD", "");
        assert_eq!(simd_isa(), probed);
        std::env::remove_var("STENCILMART_NO_SIMD");
        assert_eq!(simd_isa(), probed);
    }

    #[test]
    fn peak_rss_is_positive_on_linux_and_monotonic() {
        let _guard = crate::test_guard();
        let first = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(first > 0, "VmHWM must be readable on Linux");
        }
        // Touch some memory; the high-water mark can only grow.
        let ballast = vec![1u8; 1 << 20];
        std::hint::black_box(&ballast);
        let second = peak_rss_bytes();
        assert!(second >= first, "peak RSS went backwards");
        crate::span::set_enabled(true);
        let refreshed = refresh_peak_rss();
        assert_eq!(refreshed, crate::counters::PEAK_RSS_BYTES.get());
    }

    #[test]
    fn simd_isa_tiers_are_ordered() {
        assert!(SimdIsa::Scalar < SimdIsa::Avx2);
        assert!(SimdIsa::Avx2 < SimdIsa::Avx512);
        assert_eq!(SimdIsa::Scalar.name(), "scalar");
        assert_eq!(SimdIsa::Avx2.name(), "avx2");
        assert_eq!(SimdIsa::Avx512.name(), "avx512");
        for (i, isa) in [SimdIsa::Scalar, SimdIsa::Avx2, SimdIsa::Avx512]
            .into_iter()
            .enumerate()
        {
            assert_eq!(isa.ordinal(), i as u64);
        }
    }
}

//! Run manifests: the who/what/where header of a metrics report.

use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

/// Identity of one pipeline run, embedded in the metrics report so CI
/// artifacts are self-describing and comparable across runs.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// Emitting binary (e.g. `experiments`, `ml_kernels`).
    pub tool: String,
    /// Command-line arguments of the run (without the program path).
    pub args: Vec<String>,
    /// Master seed of the run's configuration.
    pub seed: u64,
    /// FNV-1a hash of the serialized configuration.
    pub config_hash: u64,
    /// Resolved worker count ([`crate::runtime::worker_count`]).
    pub workers: usize,
    /// Resolved streamed-NN prefetch channel depth
    /// ([`crate::runtime::prefetch_depth`]) — recorded so out-of-core
    /// runs are reproducible down to their memory envelope.
    pub prefetch: usize,
    /// Active SIMD instruction-set tier ([`crate::runtime::simd_isa`])
    /// at manifest-creation time — the path that produced the run's
    /// numbers, so reports from different tiers are never conflated.
    pub isa: String,
    /// Git revision of the working tree, or `"unknown"`.
    pub git_rev: String,
    /// Wall-clock creation time, milliseconds since the Unix epoch.
    pub created_unix_ms: u128,
}

impl RunManifest {
    /// Build a manifest for the current process: hashes `config_repr`
    /// (any stable serialization of the run's configuration), captures
    /// the CLI arguments, and resolves the worker count and git
    /// revision.
    pub fn new(tool: &str, seed: u64, config_repr: &str) -> RunManifest {
        RunManifest {
            tool: tool.to_string(),
            args: std::env::args().skip(1).collect(),
            seed,
            config_hash: fnv1a(config_repr.as_bytes()),
            workers: crate::runtime::worker_count(),
            prefetch: crate::runtime::prefetch_depth(),
            isa: crate::runtime::simd_isa().name().to_string(),
            git_rev: git_rev(),
            created_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis())
                .unwrap_or(0),
        }
    }
}

/// 64-bit FNV-1a hash (stable across platforms and runs, unlike
/// `DefaultHasher`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// Streaming accumulator for the same 64-bit FNV-1a hash as [`fnv1a`]:
/// feeding the input in any chunking produces the identical digest, so
/// writers can checksum multi-megabyte shard payloads without buffering
/// them whole.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Start a fresh hash (the FNV-1a offset basis).
    pub fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Absorb a chunk of input.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    /// The digest over everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Best-effort git revision of the enclosing repository: walks up from
/// the current directory resolving `.git/HEAD` (symbolic refs via
/// `refs/...` files or `packed-refs`), falling back to the `GITHUB_SHA`
/// environment variable, then `"unknown"`. Pure filesystem reads — no
/// subprocess.
pub fn git_rev() -> String {
    if let Ok(dir) = std::env::current_dir() {
        let mut cur: Option<&Path> = Some(dir.as_path());
        while let Some(d) = cur {
            if let Some(rev) = rev_from_git_dir(&d.join(".git")) {
                return rev;
            }
            cur = d.parent();
        }
    }
    std::env::var("GITHUB_SHA").unwrap_or_else(|_| "unknown".to_string())
}

fn rev_from_git_dir(git: &Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(refname) = head.strip_prefix("ref: ") {
        if let Ok(hash) = std::fs::read_to_string(git.join(refname)) {
            return Some(hash.trim().to_string());
        }
        // Ref may only exist packed.
        if let Ok(packed) = std::fs::read_to_string(git.join("packed-refs")) {
            for line in packed.lines() {
                if let Some((hash, name)) = line.split_once(' ') {
                    if name.trim() == refname {
                        return Some(hash.trim().to_string());
                    }
                }
            }
        }
        return None;
    }
    // Detached HEAD stores the hash directly.
    (!head.is_empty()).then(|| head.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable_and_input_sensitive() {
        // Reference vector: FNV-1a("hello") is a published constant.
        assert_eq!(fnv1a(b"hello"), 0xa430_d846_80aa_bd0b);
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"seed=1"), fnv1a(b"seed=2"));
    }

    #[test]
    fn streaming_hasher_matches_one_shot_for_any_chunking() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let whole = fnv1a(&data);
        for chunk in [1usize, 3, 7, 64, 1000] {
            let mut h = Fnv1a::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finish(), whole, "chunk size {chunk}");
        }
        assert_eq!(Fnv1a::default().finish(), fnv1a(b""));
    }

    #[test]
    fn manifest_captures_process_facts() {
        let m = RunManifest::new("unit_test", 99, "{\"cfg\":1}");
        assert_eq!(m.tool, "unit_test");
        assert_eq!(m.seed, 99);
        assert_eq!(m.config_hash, fnv1a(b"{\"cfg\":1}"));
        assert!(m.workers >= 1);
        assert!((1..=64).contains(&m.prefetch));
        assert!(["scalar", "avx2", "avx512"].contains(&m.isa.as_str()));
        assert!(!m.git_rev.is_empty());
        assert!(m.created_unix_ms > 0);
    }

    #[test]
    fn git_rev_resolves_in_this_repo() {
        // The repo this crate lives in is git-initialized; from its
        // working directory the revision must resolve to a hex hash.
        let rev = git_rev();
        if rev != "unknown" {
            assert!(rev.len() >= 7, "suspicious revision {rev:?}");
            assert!(rev.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }
}

//! Exporters: the JSON metrics report and the `chrome://tracing` trace.
//!
//! JSON is emitted by hand (this crate is dependency-free); the output
//! is plain strict JSON that any parser — including the workspace's
//! vendored `serde_json` — reads back.

use crate::counters;
use crate::manifest::RunManifest;
use crate::span::{self, SpanStat};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn ms(ns: u128) -> f64 {
    ns as f64 / 1e6
}

fn stage_json(s: &SpanStat, out: &mut String) {
    out.push_str("    {\"path\": ");
    esc(&s.path, out);
    let _ = write!(
        out,
        ", \"count\": {}, \"total_ms\": {:?}, \"mean_ms\": {:?}, \"min_ms\": {:?}, \"max_ms\": {:?}, \"threads\": {}}}",
        s.count,
        ms(s.total_ns),
        ms(s.mean_ns()),
        ms(s.min_ns),
        ms(s.max_ns),
        s.threads
    );
}

/// Total wall time (ns) across every span path whose stage name (last
/// path segment) is `stage`.
pub fn stage_total_ns(stats: &[SpanStat], stage: &str) -> u128 {
    stats
        .iter()
        .filter(|s| s.stage() == stage)
        .map(|s| s.total_ns)
        .sum()
}

/// Render the full metrics report: manifest (with per-stage wall
/// times), counters, gauges, derived rates, and the dropped-event
/// count.
pub fn metrics_json(manifest: &RunManifest) -> String {
    // The peak-RSS gauge is a point-in-time read; refresh it so every
    // exported report carries the process high-water mark at export
    // time rather than whenever a stage last touched it.
    crate::runtime::refresh_peak_rss();
    let stats = span::span_stats();
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"manifest\": {\n    \"tool\": ");
    esc(&manifest.tool, &mut out);
    out.push_str(",\n    \"args\": [");
    for (i, a) in manifest.args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        esc(a, &mut out);
    }
    let _ = write!(
        out,
        "],\n    \"seed\": {},\n    \"config_hash\": \"{:016x}\",\n    \"workers\": {},\n    \"prefetch\": {},\n    \"isa\": ",
        manifest.seed, manifest.config_hash, manifest.workers, manifest.prefetch
    );
    esc(&manifest.isa, &mut out);
    out.push_str(",\n    \"git_rev\": ");
    esc(&manifest.git_rev, &mut out);
    let _ = write!(
        out,
        ",\n    \"created_unix_ms\": {},\n    \"stages\": [\n",
        manifest.created_unix_ms
    );
    for (i, s) in stats.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        stage_json(s, &mut out);
    }
    out.push_str("\n    ]\n  },\n  \"counters\": {");
    for (i, (name, value)) in counters::snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        esc(name, &mut out);
        let _ = write!(out, ": {value}");
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, g) in counters::all_gauges().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        esc(g.name(), &mut out);
        let _ = write!(out, ": {}", g.get());
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, h) in crate::hist::all_histograms().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        esc(h.name(), &mut out);
        let _ = write!(
            out,
            ": {{\"count\": {}, \"mean\": {:?}, \"p50_le\": {}, \"p90_le\": {}, \"p99_le\": {}, \"max_le\": {}}}",
            h.count(),
            h.mean(),
            h.quantile(0.50),
            h.quantile(0.90),
            h.quantile(0.99),
            h.quantile(1.0),
        );
    }
    out.push_str("\n  },\n  \"derived\": {");
    let mut first = true;
    let mut rate = |out: &mut String, name: &str, total: u64, wall_ns: u128| {
        if wall_ns == 0 {
            return;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        esc(name, out);
        let _ = write!(out, ": {:?}", total as f64 / (wall_ns as f64 / 1e9));
    };
    rate(
        &mut out,
        "train_samples_per_sec",
        counters::SAMPLES_TRAINED.get(),
        stage_total_ns(&stats, "train_epoch"),
    );
    rate(
        &mut out,
        "profile_instances_per_sec",
        counters::OC_INSTANCES_SIMULATED.get(),
        stage_total_ns(&stats, "profile_corpus"),
    );
    rate(
        &mut out,
        "gbdt_trees_per_sec",
        counters::GBDT_TREES_GROWN.get(),
        stage_total_ns(&stats, "gbdt_fit"),
    );
    let _ = write!(
        out,
        "\n  }},\n  \"trace_events_dropped\": {}\n}}\n",
        span::dropped_events()
    );
    out
}

/// Render the buffered spans as a `chrome://tracing` document
/// (`traceEvents` with complete `"X"` events; microsecond timestamps).
pub fn chrome_trace_json() -> String {
    let events = span::trace_events();
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  {\"name\": ");
        esc(&e.name, &mut out);
        let _ = write!(
            out,
            ", \"cat\": \"span\", \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {:?}, \"dur\": {:?}}}",
            e.tid, e.ts_us, e.dur_us
        );
    }
    out.push_str("\n]}\n");
    out
}

/// Write the metrics report to `path`.
pub fn write_metrics(path: &Path, manifest: &RunManifest) -> std::io::Result<()> {
    std::fs::write(path, metrics_json(manifest))
}

/// Write the chrome trace to `path`.
pub fn write_chrome_trace(path: &Path) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

/// The conventional trace path next to a metrics path:
/// `run.json` → `run.trace.json` (a missing extension gains one).
pub fn trace_path_for(metrics_path: &Path) -> PathBuf {
    let stem = metrics_path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("metrics");
    metrics_path.with_file_name(format!("{stem}.trace.json"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{GBDT_TREES_GROWN, SAMPLES_TRAINED};
    use crate::span::{set_enabled, time};
    use crate::test_guard;
    use serde::Value;

    fn demo_manifest() -> RunManifest {
        RunManifest {
            tool: "report_test".into(),
            args: vec!["--flag".into(), "va\"lue".into()],
            seed: 7,
            config_hash: 0xABCD,
            workers: 2,
            prefetch: 2,
            isa: "avx2".into(),
            git_rev: "deadbeef".into(),
            created_unix_ms: 1234,
        }
    }

    fn field<'v>(v: &'v Value, key: &str) -> &'v Value {
        match v {
            Value::Object(fields) => {
                &fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .unwrap_or_else(|| panic!("missing key {key}"))
                    .1
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn metrics_report_parses_and_carries_stages() {
        let _guard = test_guard();
        set_enabled(true);
        crate::reset();
        time("alpha", || {
            time("beta", || ());
        });
        SAMPLES_TRAINED.add(10);
        GBDT_TREES_GROWN.add(4);
        let json = metrics_json(&demo_manifest());
        let v = serde_json::parse_value(&json).expect("report is valid JSON");
        let manifest = field(&v, "manifest");
        assert_eq!(*field(manifest, "seed"), Value::Int(7));
        assert_eq!(*field(manifest, "workers"), Value::Int(2));
        assert_eq!(*field(manifest, "prefetch"), Value::Int(2));
        assert_eq!(*field(manifest, "isa"), Value::Str("avx2".into()));
        let Value::Array(stages) = field(manifest, "stages") else {
            panic!("stages not an array");
        };
        let paths: Vec<&Value> = stages.iter().map(|s| field(s, "path")).collect();
        assert!(paths.contains(&&Value::Str("alpha".into())));
        assert!(paths.contains(&&Value::Str("alpha/beta".into())));
        let counters_obj = field(&v, "counters");
        assert_eq!(*field(counters_obj, "samples_trained"), Value::Int(10));
        // Gauges live in their own section, not among the counters.
        assert!(matches!(field(&v, "gauges"), Value::Object(_)));
    }

    #[test]
    fn histograms_are_reported_with_quantiles() {
        let _guard = test_guard();
        set_enabled(true);
        crate::reset();
        for _ in 0..9 {
            crate::hist::REQUEST_LATENCY_US.record(100);
        }
        crate::hist::REQUEST_LATENCY_US.record(100_000);
        let json = metrics_json(&demo_manifest());
        let v = serde_json::parse_value(&json).expect("report is valid JSON");
        let hists = field(&v, "histograms");
        let lat = field(hists, "request_latency_us");
        assert_eq!(*field(lat, "count"), Value::Int(10));
        let p50 = field(lat, "p50_le").as_u64().unwrap();
        let p99 = field(lat, "p99_le").as_u64().unwrap();
        assert!((100..=127).contains(&p50), "p50_le = {p50}");
        assert!(p99 >= 100_000, "p99_le = {p99}");
        crate::reset();
    }

    #[test]
    fn chrome_trace_parses_and_has_events() {
        let _guard = test_guard();
        set_enabled(true);
        crate::reset();
        time("traced", || ());
        let json = chrome_trace_json();
        let v = serde_json::parse_value(&json).expect("trace is valid JSON");
        let Value::Array(events) = field(&v, "traceEvents") else {
            panic!("traceEvents not an array");
        };
        assert_eq!(events.len(), 1);
        assert_eq!(*field(&events[0], "ph"), Value::Str("X".into()));
        assert_eq!(*field(&events[0], "name"), Value::Str("traced".into()));
    }

    #[test]
    fn empty_collector_still_produces_valid_documents() {
        let _guard = test_guard();
        crate::reset();
        let m = demo_manifest();
        assert!(serde_json::parse_value(&metrics_json(&m)).is_ok());
        assert!(serde_json::parse_value(&chrome_trace_json()).is_ok());
    }

    #[test]
    fn trace_path_convention() {
        assert_eq!(
            trace_path_for(Path::new("out/run.json")),
            PathBuf::from("out/run.trace.json")
        );
        assert_eq!(
            trace_path_for(Path::new("metrics")),
            PathBuf::from("metrics.trace.json")
        );
    }

    #[test]
    fn escaping_survives_round_trip() {
        let mut s = String::new();
        esc("a\"b\\c\nd\u{1}", &mut s);
        let v: String = serde_json::from_str(&s).unwrap();
        assert_eq!(v, "a\"b\\c\nd\u{1}");
    }
}

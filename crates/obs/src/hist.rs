//! Process-global latency/size histograms with power-of-two buckets.
//!
//! A [`Histogram`] is a fixed array of relaxed atomic bucket counters —
//! bucket `i` holds samples whose value has bit length `i` (i.e. values
//! in `[2^(i-1), 2^i)`), so recording is one `leading_zeros` plus two
//! uncontended RMWs and never allocates. Like [`crate::counters`], all
//! updates are gated on the single [`crate::enabled`] flag.
//!
//! Quantiles are resolved to the *upper bound* of the bucket containing
//! the requested rank — a ≤2× overestimate by construction, which is
//! the right fidelity for an always-on report (bench bins that need
//! exact percentiles compute them from their own raw samples).

use crate::span::enabled;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets: covers the full `u64` value range.
pub const BUCKETS: usize = 65;

/// A named process-global histogram over `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    help: &'static str,
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Histogram {
    /// Create a histogram cell (const, for `static` registration).
    pub const fn new(name: &'static str, help: &'static str) -> Histogram {
        Histogram {
            name,
            help,
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// Metric name as it appears in reports.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description.
    pub fn help(&self) -> &'static str {
        self.help
    }

    /// Bucket index for a value: its bit length (0 for 0).
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Upper bound (inclusive) of a bucket.
    fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one sample (no-op while collection is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample value, or 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`), or 0 with no samples.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        // Rank of the requested sample, 1-based, clamped into range.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bound(i);
            }
        }
        Self::bucket_bound(BUCKETS - 1)
    }

    /// Reset all buckets and the sum (always honored, even while
    /// disabled).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// End-to-end request latency observed by the serving engine, in
/// microseconds (submit to reply).
pub static REQUEST_LATENCY_US: Histogram = Histogram::new(
    "request_latency_us",
    "serving request latency from submit to reply, microseconds",
);
/// Number of requests the serving engine dispatched per micro-batch.
pub static BATCH_SIZE: Histogram =
    Histogram::new("batch_size", "requests dispatched per serving micro-batch");

static ALL_HISTOGRAMS: [&Histogram; 2] = [&REQUEST_LATENCY_US, &BATCH_SIZE];

/// Every registered histogram, in report order.
pub fn all_histograms() -> &'static [&'static Histogram] {
    &ALL_HISTOGRAMS
}

/// Reset every registered histogram.
pub fn reset_all() {
    for h in all_histograms() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::set_enabled;
    use crate::test_guard;

    static TEST_HIST: Histogram = Histogram::new("test_hist", "test");

    #[test]
    fn records_count_sum_mean() {
        let _guard = test_guard();
        set_enabled(true);
        TEST_HIST.reset();
        for v in [1u64, 2, 3, 100] {
            TEST_HIST.record(v);
        }
        assert_eq!(TEST_HIST.count(), 4);
        assert_eq!(TEST_HIST.sum(), 106);
        assert!((TEST_HIST.mean() - 26.5).abs() < 1e-9);
        TEST_HIST.reset();
        assert_eq!(TEST_HIST.count(), 0);
        assert_eq!(TEST_HIST.quantile(0.5), 0);
    }

    #[test]
    fn quantiles_bound_the_sample() {
        let _guard = test_guard();
        set_enabled(true);
        static H: Histogram = Histogram::new("quantile_hist", "test");
        H.reset();
        // 99 fast samples at 10, one slow at 5000.
        for _ in 0..99 {
            H.record(10);
        }
        H.record(5000);
        let p50 = H.quantile(0.50);
        let p99 = H.quantile(0.99);
        let p100 = H.quantile(1.0);
        // p50/p99 land in the bucket of 10 ([8,16)); p100 in 5000's.
        assert_eq!(p50, 15);
        assert_eq!(p99, 15);
        assert!((4096..=8191).contains(&p100), "p100 = {p100}");
        assert!(p50 <= p99 && p99 <= p100);
    }

    #[test]
    fn zero_and_huge_values_have_buckets() {
        let _guard = test_guard();
        set_enabled(true);
        static H: Histogram = Histogram::new("edge_hist", "test");
        H.reset();
        H.record(0);
        H.record(u64::MAX);
        assert_eq!(H.count(), 2);
        assert_eq!(H.quantile(0.0), 0);
        assert_eq!(H.quantile(1.0), u64::MAX);
    }

    #[test]
    fn disabled_records_are_dropped() {
        let _guard = test_guard();
        static H: Histogram = Histogram::new("disabled_hist", "test");
        set_enabled(false);
        H.record(7);
        set_enabled(true);
        assert_eq!(H.count(), 0);
    }

    #[test]
    fn registry_is_wired() {
        assert!(all_histograms().len() >= 2);
        let mut names: Vec<&str> = all_histograms().iter().map(|h| h.name()).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate histogram name registered");
        assert!(!all_histograms()[0].help().is_empty());
    }
}

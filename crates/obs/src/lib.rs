#![warn(missing_docs)]

//! Zero-dependency observability substrate for the StencilMART pipeline.
//!
//! Every stage of the pipeline (stencil generation → per-GPU profiling →
//! PCC merge → training → experiments) reports into one process-global
//! collector through two primitives:
//!
//! * [`fn@span`] — RAII hierarchical wall-time spans. Spans nest per thread
//!   (the path of a span is `parent/child` within its own thread) and
//!   aggregate by path into count / total / min / max statistics, with
//!   the set of participating threads tracked per path. Each completed
//!   span also records a `chrome://tracing` event (capped; overflow is
//!   counted, never reallocated unboundedly).
//! * [`counters`] — process-global atomic counters and gauges
//!   (stencils profiled, OC instances simulated, GEMM FLOPs, crashes,
//!   training samples, …) with relaxed-ordering `add`/`set`.
//!
//! Both primitives are gated on a single [`set_enabled`] flag whose
//! disabled cost is one relaxed atomic load, so the instrumentation is
//! cheap enough to leave on in production runs (the `ml_kernels` bench
//! verifies < 2% overhead with everything enabled).
//!
//! Two exporters turn the collected state into artifacts:
//!
//! * [`report::metrics_json`] — a JSON metrics report embedding a
//!   [`manifest::RunManifest`] (config hash, seed, worker count, git
//!   revision, per-stage wall times), the counter/gauge snapshot, and
//!   derived throughput rates.
//! * [`report::chrome_trace_json`] — a trace file loadable in
//!   `chrome://tracing` / Perfetto.
//!
//! The crate also owns the pipeline-wide worker-count resolution
//! ([`runtime::worker_count`], honoring `STENCILMART_THREADS`) so that a
//! single environment variable controls every thread pool in the
//! workspace.

pub mod counters;
pub mod hist;
pub mod manifest;
pub mod report;
pub mod runtime;
pub mod span;

pub use counters::Counter;
pub use hist::Histogram;
pub use manifest::RunManifest;
pub use span::{enabled, set_enabled, span, time, Span};

/// Clear all collected observability state: span aggregates, trace
/// events, the dropped-event count, and every counter, gauge, and
/// histogram.
///
/// Intended for tests and for bench bins that measure several isolated
/// workloads in one process.
pub fn reset() {
    span::reset_spans();
    counters::reset_all();
    hist::reset_all();
}

/// Serializes unit tests that touch the process-global collector or the
/// enabled flag, so parallel test threads don't observe each other.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

//! Microbenchmark for the raw cost of one span create + drop.
//!
//! ```text
//! cargo run --release -p stencilmart-obs --example span_cost
//! ```
//!
//! This is the number behind the 2% overhead budget in DESIGN.md: a span
//! costs ~180 ns enabled (string build + registry update + trace event)
//! and ~4 ns disabled (one relaxed atomic load), so instrumentation at
//! epoch/stage granularity (hundreds of microseconds and up) stays far
//! under budget. Note the trace buffer caps at
//! [`stencilmart_obs::MAX_TRACE_EVENTS`]; beyond it spans only count a
//! drop, which makes the steady-state enabled cost slightly cheaper than
//! the pre-cap cost measured here.

use std::time::Instant;

fn main() {
    stencilmart_obs::set_enabled(true);
    for _ in 0..1000 {
        let _s = stencilmart_obs::span("warm");
    }
    let n = 100_000u64;
    let t = Instant::now();
    for _ in 0..n {
        let _s = stencilmart_obs::span("probe");
    }
    let ns = t.elapsed().as_nanos() as f64 / n as f64;
    println!("span cost enabled:  {ns:.0} ns");
    stencilmart_obs::set_enabled(false);
    let t = Instant::now();
    for _ in 0..n {
        let _s = stencilmart_obs::span("probe");
    }
    let ns = t.elapsed().as_nanos() as f64 / n as f64;
    println!("span cost disabled: {ns:.1} ns");
}

//! Substrate microbenchmarks: stencil representation, random generation,
//! kernel characterization, and the execution-time model. These are the
//! inner loops behind Figs. 1, 2, and 4.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use stencilmart_gpusim::{characterize, simulate, GpuArch, GpuId, OptCombo, ParamSetting};
use stencilmart_stencil::codegen::{emit, KernelFlavor};
use stencilmart_stencil::features::{extract, FeatureConfig};
use stencilmart_stencil::generator::{GeneratorConfig, StencilGenerator};
use stencilmart_stencil::pattern::Dim;
use stencilmart_stencil::shapes;
use stencilmart_stencil::tensor::BinaryTensor;

fn bench_tensor_assignment(c: &mut Criterion) {
    let p2 = shapes::box_(Dim::D2, 4);
    let p3 = shapes::box_(Dim::D3, 4);
    c.bench_function("tensor_assign_2d_box4", |b| {
        b.iter(|| BinaryTensor::canvas(black_box(&p2)))
    });
    c.bench_function("tensor_assign_3d_box4", |b| {
        b.iter(|| BinaryTensor::canvas(black_box(&p3)))
    });
}

fn bench_feature_extraction(c: &mut Criterion) {
    let p = shapes::cross(Dim::D3, 4);
    let table2 = FeatureConfig::table2();
    let extended = FeatureConfig::extended();
    c.bench_function("features_table2_3d", |b| {
        b.iter(|| extract(black_box(&p), &table2))
    });
    c.bench_function("features_extended_3d", |b| {
        b.iter(|| extract(black_box(&p), &extended))
    });
}

fn bench_generator(c: &mut Criterion) {
    c.bench_function("generate_stencil_3d_order4", |b| {
        b.iter_batched(
            || StencilGenerator::new(42),
            |mut g| g.generate(&GeneratorConfig::new(Dim::D3, 4)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_simulator(c: &mut Criterion) {
    let arch = GpuArch::preset(GpuId::V100);
    let p = shapes::box_(Dim::D3, 2);
    let oc = OptCombo::parse("ST_RT_PR").unwrap();
    let mut params = ParamSetting::default_for(&oc);
    params.block_x = 32;
    params.block_y = 8;
    c.bench_function("characterize_box3d2r", |b| {
        b.iter(|| characterize(black_box(&p), 512, &oc, &params, &arch))
    });
    c.bench_function("simulate_box3d2r", |b| {
        b.iter(|| simulate(black_box(&p), 512, &oc, &params, &arch))
    });
}

fn bench_codegen(c: &mut Criterion) {
    let p = shapes::box_(Dim::D3, 2);
    c.bench_function("codegen_streaming_box3d2r", |b| {
        b.iter(|| {
            emit(
                black_box(&p),
                512,
                KernelFlavor::Streaming { prefetch: true },
            )
        })
    });
}

criterion_group!(
    benches,
    bench_tensor_assignment,
    bench_feature_extraction,
    bench_generator,
    bench_simulator,
    bench_codegen
);
criterion_main!(benches);

//! ML-substrate kernel benchmarks: matmul, convolution forward/backward,
//! GBDT split search (exact vs histogram), and Adam steps — the inner
//! loops every figure's training cost reduces to.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use stencilmart_ml::data::FeatureMatrix;
use stencilmart_ml::gbdt::{GbdtConfig, GbdtRegressor};
use stencilmart_ml::nn::{Adam, Conv2d, Dense, Layer, Net, Relu, Sequential};
use stencilmart_ml::tensor::Tensor;

fn bench_matmul(c: &mut Criterion) {
    let a = Tensor::from_vec(&[64, 128], (0..8192).map(|i| (i % 7) as f32).collect());
    let b = Tensor::from_vec(&[128, 64], (0..8192).map(|i| (i % 5) as f32).collect());
    c.bench_function("matmul_64x128x64", |bch| {
        bch.iter(|| Tensor::matmul(black_box(&a), black_box(&b)))
    });
}

fn bench_conv_forward_backward(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut conv = Conv2d::new(1, 8, 3, &mut rng);
    let x = Tensor::from_vec(&[32, 1, 9, 9], vec![0.5; 32 * 81]);
    c.bench_function("conv2d_forward_batch32_9x9", |b| {
        b.iter(|| conv.forward(black_box(&x), false))
    });
    c.bench_function("conv2d_fwd_bwd_batch32_9x9", |b| {
        b.iter(|| {
            let y = conv.forward(black_box(&x), true);
            conv.backward(&y)
        })
    });
}

fn bench_gbdt_split_strategies(c: &mut Criterion) {
    let n = 2000;
    let cols = 23;
    let data: Vec<f32> = (0..n * cols)
        .map(|i| ((i * 2654435761) % 1000) as f32)
        .collect();
    let x = FeatureMatrix::new(n, cols, data);
    let y: Vec<f32> = (0..n).map(|i| (i % 13) as f32).collect();
    let mut group = c.benchmark_group("gbdt_fit_2000x23_20rounds");
    group.sample_size(10);
    let base = GbdtConfig {
        rounds: 20,
        ..GbdtConfig::default()
    };
    group.bench_function("hist_32_bins", |b| {
        b.iter(|| GbdtRegressor::fit(black_box(&x), &y, &base))
    });
    group.bench_function("exact_greedy", |b| {
        b.iter(|| GbdtRegressor::fit(black_box(&x), &y, &base.exact()))
    });
    group.finish();
}

fn bench_adam_step(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut net = Sequential::new()
        .push(Dense::new(64, 64, &mut rng))
        .push(Relu::new())
        .push(Dense::new(64, 1, &mut rng));
    let x = Tensor::from_vec(&[32, 64], vec![0.1; 2048]);
    let mut opt = Adam::new(1e-3);
    c.bench_function("adam_step_2layer_mlp", |b| {
        b.iter(|| {
            let y = net.forward(black_box(&x), true);
            net.zero_grads();
            net.backward(&y);
            opt.step(&mut net);
        })
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_conv_forward_backward,
    bench_gbdt_split_strategies,
    bench_adam_step
);
criterion_main!(benches);

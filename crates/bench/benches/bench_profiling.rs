//! Profiling-stage benchmarks: the per-stencil random parameter search
//! that generates Figs. 1, 2, and 4, and the full-corpus parallel sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stencilmart_gpusim::{
    profile_corpus, profile_stencil, GpuArch, GpuId, NoiseModel, ProfileConfig,
};
use stencilmart_stencil::generator::StencilGenerator;
use stencilmart_stencil::pattern::Dim;
use stencilmart_stencil::shapes;

fn cfg() -> ProfileConfig {
    ProfileConfig {
        samples_per_oc: 4,
        noise: NoiseModel::default(),
        seed: 7,
    }
}

fn bench_profile_single(c: &mut Criterion) {
    let arch = GpuArch::preset(GpuId::V100);
    let star = shapes::star(Dim::D2, 1);
    let boxx = shapes::box_(Dim::D3, 4);
    c.bench_function("profile_star2d1r_all_ocs", |b| {
        b.iter(|| profile_stencil(black_box(&star), 8192, &arch, &cfg(), 0))
    });
    c.bench_function("profile_box3d4r_all_ocs", |b| {
        b.iter(|| profile_stencil(black_box(&boxx), 512, &arch, &cfg(), 0))
    });
}

fn bench_profile_corpus(c: &mut Criterion) {
    let arch = GpuArch::preset(GpuId::A100);
    let mut gen = StencilGenerator::new(3);
    let corpus = gen.generate_corpus(Dim::D2, 4, 16);
    c.bench_function("profile_corpus_16x2d_parallel", |b| {
        b.iter(|| profile_corpus(black_box(&corpus), 8192, &arch, &cfg()))
    });
}

criterion_group!(benches, bench_profile_single, bench_profile_corpus);
criterion_main!(benches);

//! Correlation-analysis benchmarks: the pairwise-PCC matrix, top-pair
//! extraction, and the OC merging that back Fig. 3 and the class
//! construction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stencilmart::pcc;
use stencilmart::{PipelineConfig, ProfiledCorpus};
use stencilmart_gpusim::GpuId;
use stencilmart_stencil::pattern::Dim;

fn small_corpus() -> ProfiledCorpus {
    let cfg = PipelineConfig {
        stencils_per_dim: 24,
        samples_per_oc: 3,
        gpus: vec![GpuId::V100, GpuId::P100],
        ..PipelineConfig::default()
    };
    ProfiledCorpus::build(&cfg, Dim::D2)
}

fn bench_pcc_matrix(c: &mut Criterion) {
    let corpus = small_corpus();
    let matrix = pcc::oc_time_matrix(corpus.profiles_for(GpuId::V100));
    c.bench_function("pairwise_pcc_30oc_24stencils", |b| {
        b.iter(|| pcc::pairwise_pcc(black_box(&matrix)))
    });
    let mat = pcc::pairwise_pcc(&matrix);
    c.bench_function("top_pairs_100", |b| {
        b.iter(|| pcc::top_pairs(black_box(&mat), 100))
    });
}

fn bench_merging(c: &mut Criterion) {
    let corpus = small_corpus();
    c.bench_function("derive_merging_5_classes", |b| {
        b.iter(|| corpus.derive_merging(black_box(5)))
    });
}

criterion_group!(benches, bench_pcc_matrix, bench_merging);
criterion_main!(benches);

//! Regression-mechanism benchmarks (the compute behind Figs. 12–13):
//! training and inference cost of MLP, ConvMLP, and GBRegressor, plus the
//! MLP-topology scaling that Fig. 13 sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stencilmart::dataset::RegressionDataset;
use stencilmart::models::{MlpShape, RegressorKind, TrainedRegressor};
use stencilmart::{PipelineConfig, ProfiledCorpus};
use stencilmart_gpusim::GpuId;
use stencilmart_stencil::pattern::Dim;

fn dataset() -> RegressionDataset {
    let cfg = PipelineConfig {
        stencils_per_dim: 12,
        samples_per_oc: 2,
        gpus: vec![GpuId::V100, GpuId::A100],
        max_regression_rows: 800,
        ..PipelineConfig::default()
    };
    let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
    RegressionDataset::build(&corpus, &cfg)
}

fn bench_training(c: &mut Criterion) {
    let ds = dataset();
    let idx: Vec<usize> = (0..ds.len()).collect();
    let shape = MlpShape {
        hidden_layers: 4,
        width: 32,
    };
    let mut group = c.benchmark_group("regressor_train_800rows");
    group.sample_size(10);
    for kind in RegressorKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                TrainedRegressor::train(
                    kind,
                    Dim::D2,
                    shape,
                    &ds.features,
                    &ds.tensors,
                    &ds.target_ln_ms,
                    black_box(&idx),
                    1,
                )
            })
        });
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let ds = dataset();
    let idx: Vec<usize> = (0..ds.len()).collect();
    let shape = MlpShape {
        hidden_layers: 4,
        width: 32,
    };
    let mut group = c.benchmark_group("regressor_predict_800rows");
    for kind in RegressorKind::ALL {
        let mut model = TrainedRegressor::train(
            kind,
            Dim::D2,
            shape,
            &ds.features,
            &ds.tensors,
            &ds.target_ln_ms,
            &idx,
            1,
        );
        group.bench_function(kind.name(), |b| {
            b.iter(|| model.predict_ln(&ds.features, &ds.tensors, black_box(&idx)))
        });
    }
    group.finish();
}

/// The Fig. 13 axis: training cost as MLP width grows.
fn bench_mlp_width_scaling(c: &mut Criterion) {
    let ds = dataset();
    let idx: Vec<usize> = (0..ds.len()).collect();
    let mut group = c.benchmark_group("mlp_train_width");
    group.sample_size(10);
    for width in [16usize, 64, 256] {
        group.bench_function(format!("w{width}"), |b| {
            b.iter(|| {
                TrainedRegressor::train(
                    RegressorKind::Mlp,
                    Dim::D2,
                    MlpShape {
                        hidden_layers: 4,
                        width,
                    },
                    &ds.features,
                    &ds.tensors,
                    &ds.target_ln_ms,
                    black_box(&idx),
                    1,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_training,
    bench_inference,
    bench_mlp_width_scaling
);
criterion_main!(benches);

//! Rental-advisor benchmarks (the compute behind Figs. 14–15): end-to-end
//! advisor evaluation under both criteria.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stencilmart::advisor::{evaluate_advisor, Criterion as RankBy};
use stencilmart::dataset::RegressionDataset;
use stencilmart::models::RegressorKind;
use stencilmart::{PipelineConfig, ProfiledCorpus};
use stencilmart_stencil::pattern::Dim;

fn bench_advisor(c: &mut Criterion) {
    let cfg = PipelineConfig {
        stencils_per_dim: 12,
        samples_per_oc: 2,
        max_regression_rows: 1200,
        ..PipelineConfig::default()
    };
    let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
    let ds = RegressionDataset::build(&corpus, &cfg);
    let mut group = c.benchmark_group("advisor");
    group.sample_size(10);
    group.bench_function("pure_performance", |b| {
        b.iter(|| {
            evaluate_advisor(
                &corpus,
                &ds,
                &cfg,
                RegressorKind::GbRegressor,
                RankBy::PurePerformance,
                black_box(0),
            )
        })
    });
    group.bench_function("cost_efficiency", |b| {
        b.iter(|| {
            evaluate_advisor(
                &corpus,
                &ds,
                &cfg,
                RegressorKind::GbRegressor,
                RankBy::CostEfficiency,
                black_box(0),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_advisor);
criterion_main!(benches);

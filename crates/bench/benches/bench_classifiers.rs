//! Classification-mechanism benchmarks (the compute behind Figs. 9–11):
//! training and inference cost of ConvNet, FcNet, and GBDT, plus the
//! representation ablation (Table II features vs binary tensor) called
//! out in DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stencilmart::dataset::ClassificationDataset;
use stencilmart::models::{ClassifierKind, TrainedClassifier};
use stencilmart::{PipelineConfig, ProfiledCorpus};
use stencilmart_gpusim::GpuId;
use stencilmart_stencil::pattern::Dim;

fn dataset(dim: Dim) -> ClassificationDataset {
    let cfg = PipelineConfig {
        stencils_per_dim: 32,
        samples_per_oc: 3,
        gpus: vec![GpuId::V100],
        ..PipelineConfig::default()
    };
    let corpus = ProfiledCorpus::build(&cfg, dim);
    let merging = corpus.derive_merging(5);
    ClassificationDataset::build(&corpus, &merging, GpuId::V100)
}

fn bench_training(c: &mut Criterion) {
    let ds2 = dataset(Dim::D2);
    let idx: Vec<usize> = (0..ds2.len()).collect();
    let mut group = c.benchmark_group("classifier_train_2d");
    group.sample_size(10);
    for kind in ClassifierKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                TrainedClassifier::train(
                    kind,
                    Dim::D2,
                    ds2.classes,
                    &ds2.features,
                    &ds2.tensors,
                    &ds2.labels,
                    black_box(&idx),
                    1,
                )
            })
        });
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let ds = dataset(Dim::D2);
    let idx: Vec<usize> = (0..ds.len()).collect();
    let mut group = c.benchmark_group("classifier_predict_2d");
    for kind in ClassifierKind::ALL {
        let mut model = TrainedClassifier::train(
            kind,
            Dim::D2,
            ds.classes,
            &ds.features,
            &ds.tensors,
            &ds.labels,
            &idx,
            1,
        );
        group.bench_function(kind.name(), |b| {
            b.iter(|| model.predict(&ds.features, &ds.tensors, black_box(&idx)))
        });
    }
    group.finish();
}

/// Ablation: how much slower is the tensor representation (81 columns)
/// than the Table II features (11 columns) for the same tree model?
fn bench_ablation_repr(c: &mut Criterion) {
    let ds = dataset(Dim::D2);
    let idx: Vec<usize> = (0..ds.len()).collect();
    let mut group = c.benchmark_group("ablation_repr_gbdt_input");
    group.sample_size(10);
    group.bench_function("table2_features", |b| {
        b.iter(|| {
            TrainedClassifier::train(
                ClassifierKind::Gbdt,
                Dim::D2,
                ds.classes,
                &ds.features,
                &ds.tensors,
                &ds.labels,
                black_box(&idx),
                1,
            )
        })
    });
    group.bench_function("tensor_columns", |b| {
        b.iter(|| {
            // Feed the raw 81-column tensor to the tree model instead of
            // the engineered features.
            TrainedClassifier::train(
                ClassifierKind::Gbdt,
                Dim::D2,
                ds.classes,
                &ds.tensors,
                &ds.tensors,
                &ds.labels,
                black_box(&idx),
                1,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_training,
    bench_inference,
    bench_ablation_repr
);
criterion_main!(benches);

#![warn(missing_docs)]

//! Benchmark harness for StencilMART: the `experiments` binary (in
//! `src/bin/`) regenerates every table and figure of the paper, and the
//! Criterion benches (in `benches/`) measure the compute kernels behind
//! each experiment plus the ablations called out in DESIGN.md.

use stencilmart::config::PipelineConfig;

/// Scale presets accepted by the `experiments` binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny smoke-test sizes (seconds).
    Quick,
    /// Laptop-scale defaults (minutes; used for EXPERIMENTS.md).
    Default,
    /// Paper-scale sizes (hours).
    Paper,
}

impl Scale {
    /// Parse from a CLI flag value.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "default" => Some(Scale::Default),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The pipeline configuration for this scale.
    pub fn config(self) -> PipelineConfig {
        match self {
            Scale::Quick => PipelineConfig::quick(),
            Scale::Default => PipelineConfig::default(),
            Scale::Paper => PipelineConfig::paper(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
        assert!(Scale::Quick.config().stencils_per_dim < Scale::Paper.config().stencils_per_dim);
    }
}

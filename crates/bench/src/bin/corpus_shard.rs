//! Out-of-core sharded-training benchmark + CI corruption smoke.
//!
//! ```text
//! corpus_shard [--quick] [--workers N] [--dir PATH]
//!              [--metrics-out PATH] [OUTPUT.json]
//! corpus_shard --smoke --dir PATH
//! ```
//!
//! **Bench mode** writes `BENCH_outofcore.json` (default) proving the
//! out-of-core pipeline "stays fast past RAM": it streams a
//! corpus-scale synthetic regression matrix through [`BinStoreWriter`]
//! (never materializing it), then times
//!
//! * `gbdt_fit_resident_10k` — in-RAM [`GbdtRegressor::fit`] on a
//!   10k-row slice of the same data (the rate an all-in-RAM pipeline
//!   gets), in rows·trees/s,
//! * `gbdt_fit_streamed` — [`GbdtRegressor::fit_streamed`] over the
//!   full on-disk store with a bounded shard cache, same unit,
//! * `nn_epoch_resident_10k` / `nn_epoch_streamed` — the in-RAM MLP
//!   trainer vs the chunk-prefetching streamed trainer, in samples/s,
//!
//! and records `peak_rss_bytes` (VmHWM) next to `rss_budget_bytes` so
//! `bench_gate` machine-checks that the memory cap actually held.
//! Before any timing it asserts the streamed fit is byte-identical to
//! the resident fit across shard counts and worker counts. The bench
//! itself fails when streamed throughput drops below 75% of the
//! resident rate or the RSS budget is exceeded. `--quick` keeps the
//! same datasets with fewer timing repetitions (CI compares like for
//! like against the committed baseline).
//!
//! **Smoke mode** (`--smoke --dir PATH`) is the CI corruption drill: it
//! builds a small *real* sharded corpus (profiled, not synthetic),
//! verifies the merge reproduces it, corrupts shard files (bit flip and
//! truncation) and asserts every failure surfaces as a structured
//! `MartError` kind — never a panic — then trains a GBDT from the
//! surviving shards via `open_surviving`.

use std::path::{Path, PathBuf};
use std::time::Instant;
use stencilmart::binstore::{BinStore, BinStoreWriter};
use stencilmart::config::PipelineConfig;
use stencilmart::models::{build_mlp, train_gb_regressor_streamed, MlpShape};
use stencilmart::shard::{
    build_sharded_corpus, corpus_shard_file_name, merge_corpus_shards, write_regression_store,
    write_regression_store_with, CorpusPlan, StoreOptions,
};
use stencilmart_gpusim::GpuId;
use stencilmart_ml::data::FeatureMatrix;
use stencilmart_ml::gbdt::tree::TreeConfig;
use stencilmart_ml::gbdt::{GbdtConfig, GbdtRegressor};
use stencilmart_ml::nn::{train_regressor, train_regressor_streamed, TrainConfig};
use stencilmart_ml::tensor::Tensor;
use stencilmart_obs::{self as obs, counters};
use stencilmart_stencil::pattern::Dim;

const COLS: usize = 36; // mirrors the regression layout: 18 + 6 + 8 + 4
const ROWS: usize = 200_000;
const ROWS_PER_SHARD: usize = 32_768;
const BASELINE_ROWS: usize = 10_000;
const BINS: usize = 32;
/// Code-cache capacity for the timed GBDT runs. Histogram training
/// re-scans every row each level, so the cache is sized to cover the
/// store's u8 code sections (~¼ the raw footprint; ~8 MiB here) — the
/// raw f32 corpus, targets, and labels stay on disk. Sub-covering
/// caches trade throughput for an even smaller ceiling and are
/// bit-identity-tested in `tests/prop_outofcore.rs` and the bench's
/// own determinism preflight (capacity 2).
const CACHE_SHARDS: usize = 8;
/// Cache capacity for the sub-covering locality drill — deliberately
/// smaller than the 7-shard store so every histogram level has to page.
const SUB_CACHE_SHARDS: usize = 4;
const RSS_BUDGET_BYTES: u64 = 384 * 1024 * 1024;
/// Streamed throughput must stay within 25% of the resident rate.
const MIN_RATIO: f64 = 0.75;

/// Stateless deterministic feature value for (row, col): the corpus
/// matrix is a pure function, so the writer, the determinism preflight,
/// and the resident baseline replay identical rows without ever holding
/// the matrix.
fn feat(i: u64, c: u64) -> f32 {
    let mut z = i
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(c.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((z >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
}

fn fill_row(i: usize, row: &mut Vec<f32>) -> f32 {
    row.clear();
    row.extend((0..COLS).map(|c| feat(i as u64, c as u64)));
    row.iter()
        .enumerate()
        .map(|(j, v)| ((j % 7) as f32 - 3.0) * v)
        .sum::<f32>()
        + row[0] * row[1]
}

/// Stream `rows` synthetic rows into a fresh store under `dir`,
/// optionally compressing CODES sections with the FOR codec.
fn build_store_opts(dir: &Path, rows: usize, rows_per_shard: usize, compress: bool) -> BinStore {
    let _ = std::fs::remove_dir_all(dir);
    let mut w = BinStoreWriter::create(dir, COLS, BINS, rows_per_shard).expect("create store");
    if compress {
        w = w.with_codec();
    }
    let mut row = Vec::with_capacity(COLS);
    for i in 0..rows {
        let target = fill_row(i, &mut row);
        w.push_row(&row, target, (i % 5) as u32).expect("push row");
    }
    w.finalize().expect("finalize store")
}

/// Stream `rows` synthetic rows into a fresh plain store under `dir`.
fn build_store(dir: &Path, rows: usize, rows_per_shard: usize) -> BinStore {
    build_store_opts(dir, rows, rows_per_shard, false)
}

/// The first `rows` of the same synthetic matrix, resident.
fn resident_slice(rows: usize) -> (FeatureMatrix, Vec<f32>) {
    let mut data = Vec::with_capacity(rows * COLS);
    let mut y = Vec::with_capacity(rows);
    let mut row = Vec::with_capacity(COLS);
    for i in 0..rows {
        y.push(fill_row(i, &mut row));
        data.extend_from_slice(&row);
    }
    (FeatureMatrix::new(rows, COLS, data), y)
}

fn gbdt_cfg() -> GbdtConfig {
    GbdtConfig {
        rounds: 12,
        eta: 0.1,
        subsample: 0.8,
        tree: TreeConfig {
            max_depth: 6,
            min_child_weight: 2.0,
            ..TreeConfig::default()
        },
        bins: BINS,
        seed: 0x00C0,
    }
}

fn nn_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch_size: 256,
        lr: 1e-3,
        seed: 0x00C1,
    }
}

fn small_mlp(seed: u64) -> stencilmart_ml::nn::Sequential {
    let shape = MlpShape {
        hidden_layers: 2,
        width: 32,
    };
    build_mlp(COLS, shape, seed)
}

fn best_secs<T>(samples: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn entry(name: &str, shape: &str, unit: &str, throughput: f64, elapsed_s: f64) -> serde::Value {
    use serde::Value;
    Value::Object(vec![
        ("name".into(), Value::Str(name.into())),
        ("shape".into(), Value::Str(shape.into())),
        ("unit".into(), Value::Str(unit.into())),
        ("throughput".into(), Value::Float(throughput)),
        ("seconds_per_run".into(), Value::Float(elapsed_s)),
    ])
}

/// Byte-identity preflight: the streamed fit must equal the resident
/// fit for 1 and 5 shards, at 1 worker and at `workers` workers.
fn check_determinism(dir: &Path, workers: usize) {
    let n = 4_000;
    let (x, y) = resident_slice(n);
    let cfg = GbdtConfig {
        rounds: 3,
        tree: TreeConfig {
            max_depth: 5,
            ..TreeConfig::default()
        },
        ..gbdt_cfg()
    };
    let one = build_store(&dir.join("det1"), n, n);
    let five = build_store(&dir.join("det5"), n, n.div_ceil(5));
    assert_eq!(five.shard_count(), 5, "preflight store must have 5 shards");
    std::env::set_var("STENCILMART_THREADS", "1");
    let resident = serde_json::to_string(&GbdtRegressor::fit(&x, &y, &cfg)).expect("serialize");
    for (label, store) in [("1 shard", &one), ("5 shards", &five)] {
        for threads in [1usize, workers] {
            std::env::set_var("STENCILMART_THREADS", threads.to_string());
            let bins = store.sharded_bins(2);
            let streamed = GbdtRegressor::fit_streamed(&bins, &y, &cfg);
            assert_eq!(
                serde_json::to_string(&streamed).expect("serialize"),
                resident,
                "streamed fit diverged from resident fit ({label}, {threads} workers)"
            );
        }
    }
    let _ = std::fs::remove_dir_all(dir.join("det1"));
    let _ = std::fs::remove_dir_all(dir.join("det5"));
}

/// CI corruption drill over a real (profiled) sharded corpus and a
/// regression bin store. Leaves manifests in `dir` for artifact upload.
fn smoke(dir: &Path) {
    let cfg = PipelineConfig {
        seed: 3,
        stencils_per_dim: 6,
        samples_per_oc: 2,
        gpus: vec![GpuId::V100, GpuId::P100],
        max_regression_rows: usize::MAX,
        ..PipelineConfig::default()
    };
    let corpus_dir = dir.join("corpus");
    let _ = std::fs::remove_dir_all(&corpus_dir);

    eprintln!("[smoke] building 3-shard profiled corpus...");
    build_sharded_corpus(&corpus_dir, &cfg, Dim::D2, 3).expect("build sharded corpus");
    let merged = merge_corpus_shards(&corpus_dir).expect("merge intact corpus");

    eprintln!("[smoke] bit-flipping corpus shard 1...");
    let victim = corpus_dir.join(corpus_shard_file_name(1));
    let text = std::fs::read_to_string(&victim).expect("read shard");
    let tampered = text.replace("\\\"time_ms\\\"", "\\\"time_mz\\\"");
    assert_ne!(tampered, text, "tamper pattern must hit the payload");
    std::fs::write(&victim, tampered).expect("write tampered shard");
    let err = merge_corpus_shards(&corpus_dir).expect_err("tampered merge must fail");
    println!(
        "[smoke] corpus bit flip -> MartError kind `{}`: {err}",
        err.kind()
    );
    assert_eq!(err.kind(), "checksum_mismatch");

    eprintln!("[smoke] regenerating shard 1 deterministically...");
    let plan = CorpusPlan::new(&cfg, Dim::D2);
    plan.write_shard(&corpus_dir, &plan.profile_shard(1, 3))
        .expect("rewrite shard");
    let remerged = merge_corpus_shards(&corpus_dir).expect("merge repaired corpus");
    assert_eq!(
        serde_json::to_string(&remerged).expect("serialize"),
        serde_json::to_string(&merged).expect("serialize"),
        "repaired corpus must be bit-identical"
    );

    eprintln!("[smoke] writing regression bin store...");
    let store_dir = dir.join("store");
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = write_regression_store(&store_dir, &merged, &cfg, 32, 128).expect("write store");
    assert!(
        store.shard_count() >= 4,
        "smoke store must have several shards"
    );
    let full_rows = store.rows();

    eprintln!("[smoke] corrupting two store shards (bit flip + truncation)...");
    let flip = store_dir.join(&store.shard_entries()[1].file);
    let mut bytes = std::fs::read(&flip).expect("read shard");
    let k = bytes.len() - 9;
    bytes[k] ^= 0x10;
    std::fs::write(&flip, &bytes).expect("write flipped shard");
    let trunc = store_dir.join(&store.shard_entries()[2].file);
    let bytes = std::fs::read(&trunc).expect("read shard");
    std::fs::write(&trunc, &bytes[..bytes.len() - 5]).expect("write truncated shard");

    let err = BinStore::open(&store_dir).expect_err("strict open must fail");
    println!(
        "[smoke] strict open -> MartError kind `{}`: {err}",
        err.kind()
    );
    assert!(["checksum_mismatch", "invalid_shard"].contains(&err.kind()));

    let (survivors, dropped) = BinStore::open_surviving(&store_dir).expect("open survivors");
    assert_eq!(dropped.len(), 2, "exactly the two corrupted shards drop");
    for (id, e) in &dropped {
        println!("[smoke] dropped shard {id}: kind `{}`: {e}", e.kind());
        assert!(["checksum_mismatch", "invalid_shard"].contains(&e.kind()));
    }
    assert!(survivors.rows() < full_rows);

    eprintln!(
        "[smoke] training GBDT from {} surviving rows...",
        survivors.rows()
    );
    let model = train_gb_regressor_streamed(&survivors, 7, 2).expect("train from survivors");
    let (x, _) = resident_slice(4); // any matrix with enough columns
    assert_eq!(x.cols(), COLS);
    drop(model);

    eprintln!("[smoke] corruption drill against a compressed store...");
    let packed_dir = dir.join("store-packed");
    let _ = std::fs::remove_dir_all(&packed_dir);
    let opts = StoreOptions {
        wide_codes: false,
        compress: true,
    };
    let packed = write_regression_store_with(&packed_dir, &merged, &cfg, 32, 128, opts)
        .expect("write compressed store");
    assert!(packed.shard_count() >= 4, "compressed store must shard");
    let victim = packed_dir.join(&packed.shard_entries()[1].file);
    let mut bytes = std::fs::read(&victim).expect("read shard");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    std::fs::write(&victim, &bytes).expect("write flipped shard");
    let err = BinStore::open(&packed_dir).expect_err("flipped compressed shard must fail open");
    println!(
        "[smoke] compressed bit flip -> MartError kind `{}`: {err}",
        err.kind()
    );
    assert!(["checksum_mismatch", "invalid_shard", "decode"].contains(&err.kind()));
    let (packed_survivors, packed_dropped) =
        BinStore::open_surviving(&packed_dir).expect("open compressed survivors");
    assert_eq!(packed_dropped.len(), 1, "exactly the flipped shard drops");
    let model =
        train_gb_regressor_streamed(&packed_survivors, 5, 2).expect("train compressed survivors");
    drop(model);

    let manifest = obs::RunManifest::new("corpus_shard", cfg.seed, "smoke");
    obs::report::write_metrics(&dir.join("smoke-metrics.json"), &manifest)
        .expect("write metrics report");
    println!(
        "[smoke] OK: corruption is structured, survivors train (plain + compressed), \
         manifests in {}",
        dir.display()
    );
}

fn main() {
    let mut out_path = "BENCH_outofcore.json".to_string();
    let mut quick = false;
    let mut workers = 4usize;
    let mut dir: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut smoke_mode = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--smoke" => smoke_mode = true,
            "--workers" => {
                let v = it.next().unwrap_or_default();
                workers = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --workers value {v:?}");
                    std::process::exit(2);
                });
            }
            "--dir" => dir = Some(PathBuf::from(it.next().unwrap_or_default())),
            "--metrics-out" => metrics_out = Some(PathBuf::from(it.next().unwrap_or_default())),
            "--help" | "-h" => {
                println!(
                    "usage: corpus_shard [--quick] [--workers N] [--dir PATH] \
                     [--metrics-out PATH] [OUTPUT.json]\n       corpus_shard --smoke --dir PATH"
                );
                return;
            }
            other => out_path = other.to_string(),
        }
    }
    obs::set_enabled(true);
    obs::reset();

    let dir = dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("stencilmart_outofcore_{}", std::process::id()))
    });
    if smoke_mode {
        smoke(&dir);
        return;
    }
    let samples = if quick { 3 } else { 4 };

    eprintln!("[corpus_shard] determinism preflight (1 vs 5 shards, 1 vs {workers} workers)...");
    check_determinism(&dir, workers);
    std::env::set_var("STENCILMART_THREADS", workers.to_string());

    eprintln!("[corpus_shard] streaming {ROWS} x {COLS} rows to disk...");
    let store_dir = dir.join("bench-store");
    let t = Instant::now();
    let store = build_store(&store_dir, ROWS, ROWS_PER_SHARD);
    let write_secs = t.elapsed().as_secs_f64();
    let mut entries = vec![entry(
        "binstore_write",
        &format!(
            "{ROWS} x {COLS}, {} shards, {BINS} bins",
            store.shard_count()
        ),
        "rows/s",
        ROWS as f64 / write_secs,
        write_secs,
    )];

    // Resident baseline FIRST: the in-RAM rate on a 10k corpus is the
    // yardstick the streamed path must stay within 25% of.
    let cfg = gbdt_cfg();
    let gbdt_shape = |n: usize| {
        format!(
            "{n} x {COLS}, {} rounds, depth {}, {BINS} bins",
            cfg.rounds, cfg.tree.max_depth
        )
    };
    eprintln!("[corpus_shard] GBDT resident baseline ({BASELINE_ROWS} rows)...");
    let (bx, by) = resident_slice(BASELINE_ROWS);
    let resident_secs = best_secs(samples, || GbdtRegressor::fit(&bx, &by, &cfg));
    let resident_rate = BASELINE_ROWS as f64 * cfg.rounds as f64 / resident_secs;
    entries.push(entry(
        "gbdt_fit_resident_10k",
        &gbdt_shape(BASELINE_ROWS),
        "rows_trees/s",
        resident_rate,
        resident_secs,
    ));

    eprintln!(
        "[corpus_shard] GBDT streamed over {} shards (cache {CACHE_SHARDS})...",
        store.shard_count()
    );
    let y = store.all_targets().expect("targets");
    let streamed_secs = best_secs(samples, || {
        let bins = store.sharded_bins(CACHE_SHARDS);
        GbdtRegressor::fit_streamed(&bins, &y, &cfg)
    });
    let streamed_rate = ROWS as f64 * cfg.rounds as f64 / streamed_secs;
    entries.push(entry(
        "gbdt_fit_streamed",
        &format!(
            "{}, cache {CACHE_SHARDS}/{} shards",
            gbdt_shape(ROWS),
            store.shard_count()
        ),
        "rows_trees/s",
        streamed_rate,
        streamed_secs,
    ));
    let gbdt_ratio = streamed_rate / resident_rate;

    // Sub-covering cache drill: fewer cache slots than shards forces
    // paging every level. Shard-major scheduling keeps that at ~one
    // load per resident shard per level pass — the per-level figure is
    // the locality metric the perf gate tracks (lower is better). The
    // store is FOR-compressed, so the drill also exercises
    // decode-on-miss and measures the codec's byte savings at write.
    eprintln!(
        "[corpus_shard] compressed store + sub-covering cache drill \
         (cache {SUB_CACHE_SHARDS} < shards)..."
    );
    let saved0 = counters::CODEC_BYTES_SAVED.get();
    let packed = build_store_opts(&dir.join("bench-store-packed"), ROWS, ROWS_PER_SHARD, true);
    let codec_saved = counters::CODEC_BYTES_SAVED.get() - saved0;
    let loads0 = counters::SHARD_LOADS.get();
    let passes0 = counters::HIST_LEVEL_PASSES.get();
    let sub_secs = best_secs(samples, || {
        let bins = packed.sharded_bins(SUB_CACHE_SHARDS);
        GbdtRegressor::fit_streamed(&bins, &y, &cfg)
    });
    let sub_rate = ROWS as f64 * cfg.rounds as f64 / sub_secs;
    let sub_loads = counters::SHARD_LOADS.get() - loads0;
    let sub_passes = (counters::HIST_LEVEL_PASSES.get() - passes0).max(1);
    let shard_loads_per_level = sub_loads as f64 / sub_passes as f64;
    let hit_rate_pm = counters::SHARD_CACHE_HIT_RATE_PM.get();
    entries.push(entry(
        "gbdt_fit_streamed_subcache",
        &format!(
            "{}, cache {SUB_CACHE_SHARDS}/{} shards, FOR codec",
            gbdt_shape(ROWS),
            packed.shard_count()
        ),
        "rows_trees/s",
        sub_rate,
        sub_secs,
    ));

    let ncfg = nn_cfg();
    let nn_shape = |n: usize| format!("{n} x {COLS}, mlp 36-32-32-1, {} epochs", ncfg.epochs);
    eprintln!("[corpus_shard] NN resident baseline ({BASELINE_ROWS} rows)...");
    let bx_tensor = Tensor::from_vec(&[BASELINE_ROWS, COLS], bx.data().to_vec());
    let nn_resident_secs = best_secs(samples, || {
        let mut net = small_mlp(9);
        train_regressor(&mut net, &bx_tensor, &by, &ncfg)
    });
    let nn_resident_rate = (BASELINE_ROWS * ncfg.epochs) as f64 / nn_resident_secs;
    entries.push(entry(
        "nn_epoch_resident_10k",
        &nn_shape(BASELINE_ROWS),
        "samples/s",
        nn_resident_rate,
        nn_resident_secs,
    ));

    eprintln!("[corpus_shard] NN streamed with background prefetch...");
    let nn_streamed_secs = best_secs(samples, || {
        let mut net = small_mlp(9);
        train_regressor_streamed(&mut net, &store, &ncfg).expect("streamed training")
    });
    let nn_streamed_rate = (ROWS * ncfg.epochs) as f64 / nn_streamed_secs;
    entries.push(entry(
        "nn_epoch_streamed",
        &nn_shape(ROWS),
        "samples/s",
        nn_streamed_rate,
        nn_streamed_secs,
    ));
    let nn_ratio = nn_streamed_rate / nn_resident_rate;

    let peak = obs::runtime::refresh_peak_rss();
    let shard_loads = counters::SHARD_LOADS.get();
    let evictions = counters::SHARD_EVICTIONS.get();

    use serde::Value;
    let doc = Value::Object(vec![
        (
            "description".into(),
            Value::Str(
                "Out-of-core sharded training: streamed GBDT/NN throughput vs the in-RAM \
                 10k-corpus rate, under a hard RSS budget"
                    .into(),
            ),
        ),
        (
            "isa".into(),
            Value::Str(obs::runtime::simd_isa().name().into()),
        ),
        ("workers".into(), Value::Float(workers as f64)),
        ("quick".into(), Value::Bool(quick)),
        ("rows".into(), Value::Float(ROWS as f64)),
        ("peak_rss_bytes".into(), Value::Float(peak as f64)),
        (
            "rss_budget_bytes".into(),
            Value::Float(RSS_BUDGET_BYTES as f64),
        ),
        ("gbdt_streamed_vs_resident".into(), Value::Float(gbdt_ratio)),
        ("nn_streamed_vs_resident".into(), Value::Float(nn_ratio)),
        ("shard_loads".into(), Value::Float(shard_loads as f64)),
        ("shard_evictions".into(), Value::Float(evictions as f64)),
        (
            "shard_loads_per_level".into(),
            Value::Float(shard_loads_per_level),
        ),
        ("codec_bytes_saved".into(), Value::Float(codec_saved as f64)),
        (
            "shard_cache_hit_rate_pm".into(),
            Value::Float(hit_rate_pm as f64),
        ),
        ("entries".into(), Value::Array(entries)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&out_path, format!("{json}\n")).expect("write output");
    println!("wrote {out_path}");
    println!("  gbdt streamed/resident: {gbdt_ratio:.2} (floor {MIN_RATIO})");
    println!("  nn   streamed/resident: {nn_ratio:.2} (floor {MIN_RATIO})");
    println!(
        "  peak rss: {:.1} MiB (budget {:.0} MiB), {shard_loads} shard loads, {evictions} evictions",
        peak as f64 / (1024.0 * 1024.0),
        RSS_BUDGET_BYTES as f64 / (1024.0 * 1024.0)
    );
    println!(
        "  sub-covering cache: {shard_loads_per_level:.2} shard loads/level, \
         hit rate {:.1}%, codec saved {:.1} MiB",
        hit_rate_pm as f64 / 10.0,
        codec_saved as f64 / (1024.0 * 1024.0)
    );

    if let Some(path) = metrics_out {
        let manifest = obs::RunManifest::new("corpus_shard", 0x00C0, &format!("quick={quick}"));
        obs::report::write_metrics(&path, &manifest).expect("write metrics report");
        let trace = obs::report::trace_path_for(&path);
        obs::report::write_chrome_trace(&trace).expect("write chrome trace");
        eprintln!("[metrics] wrote {} and {}", path.display(), trace.display());
    }
    let _ = std::fs::remove_dir_all(&dir);

    let mut failed = false;
    if gbdt_ratio < MIN_RATIO {
        eprintln!("[corpus_shard] FAIL: streamed GBDT at {gbdt_ratio:.2} of the resident rate");
        failed = true;
    }
    if nn_ratio < MIN_RATIO {
        eprintln!("[corpus_shard] FAIL: streamed NN at {nn_ratio:.2} of the resident rate");
        failed = true;
    }
    if peak > RSS_BUDGET_BYTES {
        eprintln!(
            "[corpus_shard] FAIL: peak RSS {:.1} MiB exceeds the {:.0} MiB budget",
            peak as f64 / (1024.0 * 1024.0),
            RSS_BUDGET_BYTES as f64 / (1024.0 * 1024.0)
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

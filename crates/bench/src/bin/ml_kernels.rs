//! Headless ML-kernel microbenchmarks.
//!
//! ```text
//! ml_kernels [--quick] [--metrics-out PATH] [OUTPUT.json]
//! ```
//!
//! Times the blocked GEMM and the im2col ConvNet conv stack against the
//! naive reference kernels and writes `BENCH_ml_kernels.json` (default)
//! with per-entry shape, ns/iter, GFLOP/s, and speedup. Used to verify
//! the performance targets recorded in DESIGN.md.
//!
//! The output also carries an `obs_overhead` object measuring the cost of
//! the observability layer (spans + counters) on a GEMM workload, with
//! instrumentation enabled vs disabled; the CI perf gate asserts it stays
//! under the 2% budget. `--quick` shortens calibration for CI smoke runs,
//! and `--metrics-out PATH` additionally writes the observability report
//! and a `chrome://tracing` trace next to it.

use serde::Value;
use std::time::Instant;
use stencilmart_ml::gemm;
use stencilmart_ml::nn::{Conv2d, Layer};
use stencilmart_ml::reference;
use stencilmart_ml::tensor::Tensor;
use stencilmart_obs as obs;

/// Timing budget: minimum sample length and sample count.
#[derive(Clone, Copy)]
struct Budget {
    min_ms: u128,
    samples: usize,
}

impl Budget {
    const FULL: Budget = Budget {
        min_ms: 60,
        samples: 5,
    };
    const QUICK: Budget = Budget {
        min_ms: 15,
        samples: 3,
    };
}

/// Deterministic fill in (-1, 1).
fn fill(seed: &mut u64, out: &mut [f32]) {
    for v in out {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = ((*seed >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0;
    }
}

/// Calibrate an iteration count so one sample runs for at least
/// `budget.min_ms`.
fn calibrate(budget: Budget, f: &mut impl FnMut()) -> u64 {
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t.elapsed().as_millis() >= budget.min_ms {
            return iters;
        }
        iters *= 2;
    }
}

/// One timed sample: ns/iter over `iters` iterations.
fn sample_ns(iters: u64, f: &mut impl FnMut()) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

/// Best-case ns/iter over `budget.samples` samples. The minimum, not the
/// median: on shared runners, interference only ever adds time, so the
/// fastest sample is the most stable estimate of the kernel itself.
fn time_ns(budget: Budget, mut f: impl FnMut()) -> f64 {
    let iters = calibrate(budget, &mut f);
    (0..budget.samples)
        .map(|_| sample_ns(iters, &mut f))
        .fold(f64::INFINITY, f64::min)
}

fn entry(name: &str, shape: &str, flops: f64, ns_opt: f64, ns_ref: f64) -> Value {
    let gflops = |ns: f64| flops / ns;
    Value::Object(vec![
        ("name".into(), Value::Str(name.into())),
        ("shape".into(), Value::Str(shape.into())),
        ("ns_per_iter".into(), Value::Float(ns_opt)),
        ("gflops".into(), Value::Float(gflops(ns_opt))),
        ("ref_ns_per_iter".into(), Value::Float(ns_ref)),
        ("ref_gflops".into(), Value::Float(gflops(ns_ref))),
        ("speedup".into(), Value::Float(ns_ref / ns_opt)),
    ])
}

fn bench_gemm(budget: Budget, m: usize, k: usize, n: usize, seed: &mut u64) -> Value {
    let _span = obs::span(format!("bench_gemm_{m}x{k}x{n}"));
    let mut a = vec![0.0f32; m * k];
    let mut b = vec![0.0f32; k * n];
    fill(seed, &mut a);
    fill(seed, &mut b);
    let mut c = vec![0.0f32; m * n];
    let ns_opt = time_ns(budget, || {
        gemm::gemm(m, k, n, &a, &b, &mut c, false);
        std::hint::black_box(&c);
    });
    let ns_ref = time_ns(budget, || {
        std::hint::black_box(reference::matmul(m, k, n, &a, &b));
    });
    let flops = (2 * m * k * n) as f64;
    entry(
        &format!("gemm_{m}x{k}x{n}"),
        &format!("[{m}, {k}] x [{k}, {n}]"),
        flops,
        ns_opt,
        ns_ref,
    )
}

/// The paper's 2-D ConvNet conv stack — Conv2d(1→8, k3) then
/// Conv2d(8→8, k3) on 9×9 stencil tensors — forward plus full backward,
/// im2col/GEMM layers vs the direct reference loops.
fn bench_convnet_fwd_bwd(budget: Budget, batch: usize, seed: &mut u64) -> Value {
    let _span = obs::span(format!("bench_convnet_batch{batch}"));
    let (ic1, oc1, oc2, k, h) = (1usize, 8usize, 8usize, 3usize, 9usize);
    let h1 = h + 1 - k; // 7
    let h2 = h1 + 1 - k; // 5
    let mut rng = {
        use rand::SeedableRng;
        rand_chacha::ChaCha8Rng::seed_from_u64(11)
    };
    let mut c1 = Conv2d::new(ic1, oc1, k, &mut rng);
    let mut c2 = Conv2d::new(oc1, oc2, k, &mut rng);
    let mut xd = vec![0.0f32; batch * ic1 * h * h];
    fill(seed, &mut xd);
    let x = Tensor::from_vec(&[batch, ic1, h, h], xd.clone());
    let ns_opt = time_ns(budget, || {
        let y1 = c1.forward(&x, true);
        let y2 = c2.forward(&y1, true);
        let g1 = c2.backward(&y2);
        std::hint::black_box(c1.backward(&g1));
    });

    // Mirror the weights so both sides do identical arithmetic.
    let mut weights: Vec<(Vec<f32>, Vec<f32>)> = Vec::new();
    for layer in [&mut c1, &mut c2] {
        let mut bufs: Vec<Vec<f32>> = Vec::new();
        layer.visit_params(&mut |p, _| bufs.push(p.to_vec()));
        weights.push((bufs[0].clone(), bufs[1].clone()));
    }
    let ((w1, b1), (w2, b2)) = (weights[0].clone(), weights[1].clone());
    let ns_ref = time_ns(budget, || {
        let y1 = reference::conv2d_forward(&xd, batch, ic1, h, h, &w1, &b1, oc1, k);
        let y2 = reference::conv2d_forward(&y1, batch, oc1, h1, h1, &w2, &b2, oc2, k);
        let (g1, _, _) = reference::conv2d_backward(&y1, &y2, batch, oc1, h1, h1, &w2, oc2, k);
        std::hint::black_box(reference::conv2d_backward(
            &xd, &g1, batch, ic1, h, h, &w1, oc1, k,
        ));
    });

    // Forward MACs per layer ×2 for flops; backward (gw + gx) ≈ 2× forward.
    let fwd1 = 2 * batch * oc1 * h1 * h1 * ic1 * k * k;
    let fwd2 = 2 * batch * oc2 * h2 * h2 * oc1 * k * k;
    let flops = (3 * (fwd1 + fwd2)) as f64;
    entry(
        &format!("convnet2d_fwd_bwd_batch{batch}"),
        &format!("[{batch}, 1, 9, 9] -> conv(1->8,k3) -> conv(8->8,k3)"),
        flops,
        ns_opt,
        ns_ref,
    )
}

/// Measure the observability layer's cost on a representative workload:
/// one span per batch of 8 GEMM calls (each call bumps the GEMM counters),
/// timed with instrumentation enabled vs disabled. Samples alternate
/// disabled/enabled so shared-runner interference hits both sides
/// equally; the overhead is the smallest per-pair enabled/disabled
/// ratio, because interference only ever inflates a sample, so the
/// cleanest pair is the truest estimate (the measured cost is ~183 ns
/// per span — see the obs crate's `span_cost` example — which is well
/// under 0.1% at this granularity, while shared-runner noise alone can
/// fake several percent). Returns `(ns_enabled, ns_disabled,
/// overhead_fraction)` with the fraction clamped at zero.
fn measure_obs_overhead(budget: Budget, seed: &mut u64) -> (f64, f64, f64) {
    let (m, k, n) = (64usize, 128usize, 64usize);
    let mut a = vec![0.0f32; m * k];
    let mut b = vec![0.0f32; k * n];
    fill(seed, &mut a);
    fill(seed, &mut b);
    let mut c = vec![0.0f32; m * n];
    let mut workload = |instrumented: bool| {
        let guard = if instrumented {
            Some(obs::span("obs_probe"))
        } else {
            None
        };
        for _ in 0..8 {
            gemm::gemm(m, k, n, &a, &b, &mut c, false);
            std::hint::black_box(&c);
        }
        drop(guard);
    };
    obs::set_enabled(false);
    let iters = calibrate(budget, &mut || workload(false));
    let (mut ns_on, mut ns_off) = (f64::INFINITY, f64::INFINITY);
    let mut ratios = Vec::new();
    for _ in 0..budget.samples.max(5) {
        obs::set_enabled(false);
        let off = sample_ns(iters, &mut || workload(false));
        obs::set_enabled(true);
        let on = sample_ns(iters, &mut || workload(true));
        ns_off = ns_off.min(off);
        ns_on = ns_on.min(on);
        ratios.push(on / off);
    }
    obs::set_enabled(true);
    let best = ratios.iter().fold(f64::INFINITY, |acc, r| acc.min(*r));
    let overhead = (best - 1.0).max(0.0);
    (ns_on, ns_off, overhead)
}

fn main() {
    let mut out_path = "BENCH_ml_kernels.json".to_string();
    let mut metrics_out: Option<std::path::PathBuf> = None;
    let mut budget = Budget::FULL;
    let mut quick = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {
                quick = true;
                budget = Budget::QUICK;
            }
            "--metrics-out" => {
                let v = it.next().unwrap_or_default();
                if v.is_empty() {
                    eprintln!("--metrics-out requires a path");
                    std::process::exit(2);
                }
                metrics_out = Some(std::path::PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!("usage: ml_kernels [--quick] [--metrics-out PATH] [OUTPUT.json]");
                return;
            }
            other => out_path = other.to_string(),
        }
    }
    let mut seed = 0x5eed_u64;

    eprintln!("[ml_kernels] measuring observability overhead...");
    let (ns_on, ns_off, overhead) = measure_obs_overhead(budget, &mut seed);
    // Drop the probe's spans and counters so the report below reflects
    // only the real bench entries.
    obs::reset();

    let mut entries = Vec::new();
    for (m, k, n) in [(64, 128, 64), (128, 729, 256), (256, 256, 256)] {
        eprintln!("[ml_kernels] gemm {m}x{k}x{n}...");
        entries.push(bench_gemm(budget, m, k, n, &mut seed));
    }
    eprintln!("[ml_kernels] convnet2d fwd+bwd...");
    entries.push(bench_convnet_fwd_bwd(budget, 32, &mut seed));

    let doc = Value::Object(vec![
        (
            "description".into(),
            Value::Str(
                "ML kernel microbenchmarks: blocked GEMM + im2col conv vs naive reference".into(),
            ),
        ),
        (
            "isa".into(),
            Value::Str(obs::runtime::simd_isa().name().into()),
        ),
        ("entries".into(), Value::Array(entries)),
        ("quick".into(), Value::Bool(quick)),
        (
            "obs_overhead".into(),
            Value::Object(vec![
                ("ns_enabled".into(), Value::Float(ns_on)),
                ("ns_disabled".into(), Value::Float(ns_off)),
                ("overhead_pct".into(), Value::Float(overhead * 100.0)),
            ]),
        ),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&out_path, format!("{json}\n")).expect("write output");
    println!("wrote {out_path}");
    println!(
        "  obs overhead {:.3}% (budget < 2%): {}",
        overhead * 100.0,
        if overhead < 0.02 { "OK" } else { "EXCEEDED" }
    );
    for e in match &doc {
        Value::Object(fields) => match fields.iter().find(|(k, _)| k == "entries") {
            Some((_, Value::Array(items))) => items.iter(),
            _ => unreachable!(),
        },
        _ => unreachable!(),
    } {
        if let Value::Object(fields) = e {
            let get = |key: &str| {
                fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.clone())
                    .unwrap_or(Value::Null)
            };
            println!(
                "  {:<28} {:>10} ns/iter  {:>7} GFLOP/s  speedup {}",
                match get("name") {
                    Value::Str(s) => s,
                    _ => String::new(),
                },
                match get("ns_per_iter") {
                    Value::Float(f) => format!("{f:.0}"),
                    _ => String::new(),
                },
                match get("gflops") {
                    Value::Float(f) => format!("{f:.2}"),
                    _ => String::new(),
                },
                match get("speedup") {
                    Value::Float(f) => format!("{f:.2}x"),
                    _ => String::new(),
                },
            );
        }
    }
    if let Some(path) = metrics_out {
        let manifest = obs::RunManifest::new("ml_kernels", 0x5eed, &format!("quick={quick}"));
        obs::report::write_metrics(&path, &manifest).expect("write metrics report");
        let trace = obs::report::trace_path_for(&path);
        obs::report::write_chrome_trace(&trace).expect("write chrome trace");
        eprintln!("[metrics] wrote {} and {}", path.display(), trace.display());
    }
}

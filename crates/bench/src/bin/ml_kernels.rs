//! Headless ML-kernel microbenchmarks.
//!
//! ```text
//! ml_kernels [OUTPUT.json]
//! ```
//!
//! Times the blocked GEMM and the im2col ConvNet conv stack against the
//! naive reference kernels and writes `BENCH_ml_kernels.json` (default)
//! with per-entry shape, ns/iter, GFLOP/s, and speedup. Used to verify
//! the performance targets recorded in DESIGN.md.

use serde::Value;
use std::time::Instant;
use stencilmart_ml::gemm;
use stencilmart_ml::nn::{Conv2d, Layer};
use stencilmart_ml::reference;
use stencilmart_ml::tensor::Tensor;

/// Deterministic fill in (-1, 1).
fn fill(seed: &mut u64, out: &mut [f32]) {
    for v in out {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = ((*seed >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0;
    }
}

/// Median ns/iter over 5 samples, with iteration count calibrated so each
/// sample runs for at least ~60 ms.
fn time_ns(mut f: impl FnMut()) -> f64 {
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t.elapsed().as_millis() >= 60 {
            break;
        }
        iters *= 2;
    }
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn entry(name: &str, shape: &str, flops: f64, ns_opt: f64, ns_ref: f64) -> Value {
    let gflops = |ns: f64| flops / ns;
    Value::Object(vec![
        ("name".into(), Value::Str(name.into())),
        ("shape".into(), Value::Str(shape.into())),
        ("ns_per_iter".into(), Value::Float(ns_opt)),
        ("gflops".into(), Value::Float(gflops(ns_opt))),
        ("ref_ns_per_iter".into(), Value::Float(ns_ref)),
        ("ref_gflops".into(), Value::Float(gflops(ns_ref))),
        ("speedup".into(), Value::Float(ns_ref / ns_opt)),
    ])
}

fn bench_gemm(m: usize, k: usize, n: usize, seed: &mut u64) -> Value {
    let mut a = vec![0.0f32; m * k];
    let mut b = vec![0.0f32; k * n];
    fill(seed, &mut a);
    fill(seed, &mut b);
    let mut c = vec![0.0f32; m * n];
    let ns_opt = time_ns(|| {
        gemm::gemm(m, k, n, &a, &b, &mut c, false);
        std::hint::black_box(&c);
    });
    let ns_ref = time_ns(|| {
        std::hint::black_box(reference::matmul(m, k, n, &a, &b));
    });
    let flops = (2 * m * k * n) as f64;
    entry(
        &format!("gemm_{m}x{k}x{n}"),
        &format!("[{m}, {k}] x [{k}, {n}]"),
        flops,
        ns_opt,
        ns_ref,
    )
}

/// The paper's 2-D ConvNet conv stack — Conv2d(1→8, k3) then
/// Conv2d(8→8, k3) on 9×9 stencil tensors — forward plus full backward,
/// im2col/GEMM layers vs the direct reference loops.
fn bench_convnet_fwd_bwd(batch: usize, seed: &mut u64) -> Value {
    let (ic1, oc1, oc2, k, h) = (1usize, 8usize, 8usize, 3usize, 9usize);
    let h1 = h + 1 - k; // 7
    let h2 = h1 + 1 - k; // 5
    let mut rng = {
        use rand::SeedableRng;
        rand_chacha::ChaCha8Rng::seed_from_u64(11)
    };
    let mut c1 = Conv2d::new(ic1, oc1, k, &mut rng);
    let mut c2 = Conv2d::new(oc1, oc2, k, &mut rng);
    let mut xd = vec![0.0f32; batch * ic1 * h * h];
    fill(seed, &mut xd);
    let x = Tensor::from_vec(&[batch, ic1, h, h], xd.clone());
    let ns_opt = time_ns(|| {
        let y1 = c1.forward(&x, true);
        let y2 = c2.forward(&y1, true);
        let g1 = c2.backward(&y2);
        std::hint::black_box(c1.backward(&g1));
    });

    // Mirror the weights so both sides do identical arithmetic.
    let mut weights: Vec<(Vec<f32>, Vec<f32>)> = Vec::new();
    for layer in [&mut c1, &mut c2] {
        let mut bufs: Vec<Vec<f32>> = Vec::new();
        layer.visit_params(&mut |p, _| bufs.push(p.to_vec()));
        weights.push((bufs[0].clone(), bufs[1].clone()));
    }
    let ((w1, b1), (w2, b2)) = (weights[0].clone(), weights[1].clone());
    let ns_ref = time_ns(|| {
        let y1 = reference::conv2d_forward(&xd, batch, ic1, h, h, &w1, &b1, oc1, k);
        let y2 = reference::conv2d_forward(&y1, batch, oc1, h1, h1, &w2, &b2, oc2, k);
        let (g1, _, _) = reference::conv2d_backward(&y1, &y2, batch, oc1, h1, h1, &w2, oc2, k);
        std::hint::black_box(reference::conv2d_backward(
            &xd, &g1, batch, ic1, h, h, &w1, oc1, k,
        ));
    });

    // Forward MACs per layer ×2 for flops; backward (gw + gx) ≈ 2× forward.
    let fwd1 = 2 * batch * oc1 * h1 * h1 * ic1 * k * k;
    let fwd2 = 2 * batch * oc2 * h2 * h2 * oc1 * k * k;
    let flops = (3 * (fwd1 + fwd2)) as f64;
    entry(
        &format!("convnet2d_fwd_bwd_batch{batch}"),
        &format!("[{batch}, 1, 9, 9] -> conv(1->8,k3) -> conv(8->8,k3)"),
        flops,
        ns_opt,
        ns_ref,
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_ml_kernels.json".to_string());
    let mut seed = 0x5eed_u64;
    let mut entries = Vec::new();
    for (m, k, n) in [(64, 128, 64), (128, 729, 256), (256, 256, 256)] {
        eprintln!("[ml_kernels] gemm {m}x{k}x{n}...");
        entries.push(bench_gemm(m, k, n, &mut seed));
    }
    eprintln!("[ml_kernels] convnet2d fwd+bwd...");
    entries.push(bench_convnet_fwd_bwd(32, &mut seed));

    let doc = Value::Object(vec![
        (
            "description".into(),
            Value::Str(
                "ML kernel microbenchmarks: blocked GEMM + im2col conv vs naive reference".into(),
            ),
        ),
        ("entries".into(), Value::Array(entries)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&out_path, format!("{json}\n")).expect("write output");
    println!("wrote {out_path}");
    for e in match &doc {
        Value::Object(fields) => match &fields[1].1 {
            Value::Array(items) => items.iter(),
            _ => unreachable!(),
        },
        _ => unreachable!(),
    } {
        if let Value::Object(fields) = e {
            let get = |key: &str| {
                fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.clone())
                    .unwrap_or(Value::Null)
            };
            println!(
                "  {:<28} {:>10} ns/iter  {:>7} GFLOP/s  speedup {}",
                match get("name") {
                    Value::Str(s) => s,
                    _ => String::new(),
                },
                match get("ns_per_iter") {
                    Value::Float(f) => format!("{f:.0}"),
                    _ => String::new(),
                },
                match get("gflops") {
                    Value::Float(f) => format!("{f:.2}"),
                    _ => String::new(),
                },
                match get("speedup") {
                    Value::Float(f) => format!("{f:.2}x"),
                    _ => String::new(),
                },
            );
        }
    }
}

//! CI perf-regression gate over bench reports (`ml_kernels`,
//! `gpusim_profile`, `gbdt_train`, `serving_load`).
//!
//! ```text
//! bench_gate BASELINE.json CURRENT.json [--max-regression 0.25]
//!            [--require-overhead-below 0.02]
//! ```
//!
//! Compares each entry's metric — higher-is-better `gflops` (ml_kernels)
//! and `throughput` (stencils/s, trees/s, or serving requests/s), or
//! lower-is-better `p99_us` (serving tail latency) — of a fresh run
//! against the committed baseline, matched by entry name, and exits
//! nonzero when any entry regresses by more than the tolerance (default
//! 25%, loose enough to absorb shared-runner jitter while catching real
//! slowdowns). An
//! entry present in the baseline but absent from the current run is a
//! failure. When both reports carry a top-level `isa` field and the
//! values differ, the gate refuses outright: a scalar-tier run is not
//! comparable to an AVX2/AVX-512 baseline, so the comparison would
//! produce a meaningless verdict either way (reports predating the field
//! are compared as before). The same refusal applies to the top-level
//! `gpu_matrix` field (gpusim_profile): per-vendor throughput over an
//! 8-GPU matrix is not comparable to a 4-GPU baseline, so a differing
//! matrix size means the baseline must be regenerated, not gated
//! against. Out-of-core reports get two extra checks:
//! the top-level lower-is-better `shard_loads_per_level` (disk loads per
//! tree level under a sub-covering cache) is gated at the same tolerance
//! when both reports carry it, and `gbdt_streamed_vs_resident` must stay
//! at or above 1.0 for full-mode reports — a hard floor with no
//! tolerance, since a well-sampled streamed run falling behind the
//! resident engine is a scheduling bug, not jitter (quick-mode reports
//! get the floor relaxed by the tolerance). With
//! `--require-overhead-below` it also
//! asserts the current run's measured observability overhead stays under
//! the given fraction (the DESIGN.md budget is 2%).

use serde::Value;

fn fail(msg: &str) -> ! {
    eprintln!("bench_gate: {msg}");
    std::process::exit(1);
}

fn load(path: &str) -> Value {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    serde_json::parse_value(&text)
        .unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e:?}")))
}

/// Extract `(name, metric, lower_is_better)` triples from a report's
/// `entries` array. Higher-is-better metrics are `gflops` (ml_kernels
/// reports) and `throughput` (gpusim_profile, gbdt_train, and serving
/// requests/s); `p99_us` (serving tail latency) is lower-is-better.
fn entries(doc: &Value, path: &str) -> Vec<(String, f64, bool)> {
    doc.field("entries")
        .and_then(|v| v.as_array().map(<[Value]>::to_vec))
        .unwrap_or_else(|_| fail(&format!("{path} has no `entries` array")))
        .iter()
        .map(|e| {
            let name = e
                .field("name")
                .and_then(|v| v.as_str().map(str::to_string))
                .unwrap_or_else(|_| fail(&format!("{path}: entry without a name")));
            let higher = e
                .field("gflops")
                .or_else(|_| e.field("throughput"))
                .and_then(|v| v.as_f64());
            let (metric, lower_is_better) = match higher {
                Ok(v) => (v, false),
                Err(_) => {
                    let v = e
                        .field("p99_us")
                        .and_then(|v| v.as_f64())
                        .unwrap_or_else(|_| {
                            fail(&format!(
                                "{path}: entry {name} has no gflops/throughput/p99_us"
                            ))
                        });
                    (v, true)
                }
            };
            (name, metric, lower_is_better)
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut max_regression = 0.25f64;
    let mut overhead_below: Option<f64> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-regression" => {
                let v = it.next().unwrap_or_default();
                max_regression = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad --max-regression value {v:?}")));
            }
            "--require-overhead-below" => {
                let v = it.next().unwrap_or_default();
                overhead_below = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("bad overhead threshold {v:?}"))),
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_gate BASELINE.json CURRENT.json \
                     [--max-regression FRAC] [--require-overhead-below FRAC]"
                );
                return;
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.len() != 2 {
        fail("expected exactly two positional arguments: BASELINE.json CURRENT.json");
    }
    let baseline = load(&paths[0]);
    let current = load(&paths[1]);
    let isa_of = |doc: &Value| {
        doc.field("isa")
            .ok()
            .and_then(|v| v.as_str().ok().map(str::to_string))
    };
    if let (Some(base_isa), Some(cur_isa)) = (isa_of(&baseline), isa_of(&current)) {
        if base_isa != cur_isa {
            fail(&format!(
                "ISA mismatch: baseline {} was recorded on `{base_isa}` but the current \
                 run {} used `{cur_isa}` — numbers from different SIMD tiers are not \
                 comparable; regenerate the baseline on this tier (or unset \
                 STENCILMART_NO_SIMD) instead of gating across tiers",
                paths[0], paths[1]
            ));
        }
        println!("isa: {base_isa} (both reports)");
    }
    let matrix_of = |doc: &Value| doc.field("gpu_matrix").ok().and_then(|v| v.as_f64().ok());
    if let (Some(base_m), Some(cur_m)) = (matrix_of(&baseline), matrix_of(&current)) {
        if base_m != cur_m {
            fail(&format!(
                "GPU-matrix mismatch: baseline {} was recorded over {base_m:.0} GPU \
                 presets but the current run {} used {cur_m:.0} — per-vendor \
                 throughput over different matrices is not comparable; regenerate \
                 the baseline for this matrix instead of gating across it",
                paths[0], paths[1]
            ));
        }
        println!("gpu matrix: {base_m:.0} presets (both reports)");
    }
    let base_entries = entries(&baseline, &paths[0]);
    let cur_entries = entries(&current, &paths[1]);

    let mut failures = Vec::new();
    println!(
        "{:<30} {:>12} {:>12} {:>8}",
        "entry", "baseline", "current", "ratio"
    );
    for (name, base_gf, lower_is_better) in &base_entries {
        match cur_entries.iter().find(|(n, _, _)| n == name) {
            None => failures.push(format!("entry {name} missing from current run")),
            Some((_, cur_gf, _)) => {
                let ratio = cur_gf / base_gf;
                // Higher-is-better fails when the ratio drops below
                // 1 - tolerance; lower-is-better (p99_us) fails when it
                // inflates above 1 + tolerance.
                let regressed = if *lower_is_better {
                    ratio > 1.0 + max_regression
                } else {
                    ratio < 1.0 - max_regression
                };
                let verdict = if regressed {
                    let pct = if *lower_is_better {
                        (ratio - 1.0) * 100.0
                    } else {
                        (1.0 - ratio) * 100.0
                    };
                    let dir = if *lower_is_better { "above" } else { "below" };
                    failures.push(format!(
                        "{name} regressed: {base_gf:.2} -> {cur_gf:.2} \
                         ({pct:.1}% {dir} baseline, tolerance {:.0}%)",
                        max_regression * 100.0
                    ));
                    "FAIL"
                } else {
                    "ok"
                };
                println!("{name:<30} {base_gf:>12.2} {cur_gf:>12.2} {ratio:>7.2} {verdict}");
            }
        }
    }

    // A report that records both its measured peak RSS and the memory
    // budget it ran under (the out-of-core bench) is machine-checked:
    // "stays fast past RAM" is only meaningful if the cap actually held.
    let rss = |doc: &Value, key: &str| doc.field(key).and_then(|v| v.as_f64()).ok();
    if let (Some(peak), Some(budget)) = (
        rss(&current, "peak_rss_bytes"),
        rss(&current, "rss_budget_bytes"),
    ) {
        if peak > budget {
            failures.push(format!(
                "peak RSS {:.1} MiB exceeds the {:.1} MiB budget the run claims to hold",
                peak / (1024.0 * 1024.0),
                budget / (1024.0 * 1024.0)
            ));
        } else {
            println!(
                "peak RSS {:.1} MiB within {:.1} MiB budget: ok",
                peak / (1024.0 * 1024.0),
                budget / (1024.0 * 1024.0)
            );
        }
    }

    // Out-of-core locality gate: `shard_loads_per_level` counts disk
    // shard loads per tree level under a sub-covering cache, so it is
    // lower-is-better and, unlike wall time, immune to runner jitter —
    // the schedule either reloads shards or it does not. Compared only
    // when both reports carry the field (older baselines predate it).
    let top = |doc: &Value, key: &str| doc.field(key).and_then(|v| v.as_f64()).ok();
    if let (Some(base_lpl), Some(cur_lpl)) = (
        top(&baseline, "shard_loads_per_level"),
        top(&current, "shard_loads_per_level"),
    ) {
        let ratio = cur_lpl / base_lpl;
        if ratio > 1.0 + max_regression {
            failures.push(format!(
                "shard_loads_per_level regressed: {base_lpl:.2} -> {cur_lpl:.2} \
                 ({:.1}% above baseline, tolerance {:.0}%) — the shard-major \
                 schedule is reloading shards it should be reusing",
                (ratio - 1.0) * 100.0,
                max_regression * 100.0
            ));
        } else {
            println!("shard_loads_per_level {base_lpl:.2} -> {cur_lpl:.2}: ok");
        }
    }

    // Floor, independent of the baseline: the streamed GBDT must not
    // fall behind the resident engine — the whole point of the
    // out-of-core path is "same model, no slower once histograms
    // amortize". Full-mode reports (enough samples to be stable; the
    // committed run sits at >2x) get a hard 1.0 floor with no
    // tolerance: falling below it is a scheduling or cache bug, not
    // jitter. Quick-mode reports run too few samples over too small a
    // resident baseline to pin the ratio that tightly, so the floor
    // relaxes by the regression tolerance there.
    if let Some(ratio) = top(&current, "gbdt_streamed_vs_resident") {
        let quick = current
            .field("quick")
            .and_then(|v| v.as_bool())
            .unwrap_or(false);
        let floor = if quick { 1.0 - max_regression } else { 1.0 };
        let mode = if quick { "quick" } else { "full" };
        if ratio < floor {
            failures.push(format!(
                "gbdt_streamed_vs_resident is {ratio:.4}: the streamed engine fell \
                 behind the resident engine ({mode}-mode floor {floor:.2})"
            ));
        } else {
            println!("gbdt_streamed_vs_resident {ratio:.4} >= {floor:.2} {mode}-mode floor: ok");
        }
    }

    if let Some(threshold) = overhead_below {
        let pct = current
            .field("obs_overhead")
            .and_then(|o| o.field("overhead_pct"))
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|_| fail(&format!("{} has no obs_overhead.overhead_pct", paths[1])));
        let frac = pct / 100.0;
        if frac >= threshold {
            failures.push(format!(
                "observability overhead {pct:.3}% exceeds the {:.1}% budget",
                threshold * 100.0
            ));
        } else {
            println!(
                "obs overhead {pct:.3}% < {:.1}% budget: ok",
                threshold * 100.0
            );
        }
    }

    if failures.is_empty() {
        println!("bench_gate: OK ({} entries compared)", base_entries.len());
    } else {
        for f in &failures {
            eprintln!("bench_gate: {f}");
        }
        std::process::exit(1);
    }
}

//! CI perf-regression gate over bench reports (`ml_kernels`,
//! `gpusim_profile`, `gbdt_train`).
//!
//! ```text
//! bench_gate BASELINE.json CURRENT.json [--max-regression 0.25]
//!            [--require-overhead-below 0.02]
//! ```
//!
//! Compares each entry's higher-is-better metric (GFLOP/s for
//! `ml_kernels`; `throughput` — stencils/s or trees/s — for the
//! `gpusim_profile` and `gbdt_train` reports) of a fresh run against the
//! committed baseline, matched by entry name, and exits nonzero when any
//! entry regresses by more than the tolerance (default 25%, loose enough
//! to absorb shared-runner jitter while catching real slowdowns). An
//! entry present in the baseline but absent from the current run is a
//! failure. When both reports carry a top-level `isa` field and the
//! values differ, the gate refuses outright: a scalar-tier run is not
//! comparable to an AVX2/AVX-512 baseline, so the comparison would
//! produce a meaningless verdict either way (reports predating the field
//! are compared as before). With `--require-overhead-below` it also
//! asserts the current run's measured observability overhead stays under
//! the given fraction (the DESIGN.md budget is 2%).

use serde::Value;

fn fail(msg: &str) -> ! {
    eprintln!("bench_gate: {msg}");
    std::process::exit(1);
}

fn load(path: &str) -> Value {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    serde_json::parse_value(&text)
        .unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e:?}")))
}

/// Extract `(name, metric)` pairs from a report's `entries` array. The
/// higher-is-better metric is `gflops` (ml_kernels reports) or
/// `throughput` (gpusim_profile and gbdt_train reports).
fn entries(doc: &Value, path: &str) -> Vec<(String, f64)> {
    doc.field("entries")
        .and_then(|v| v.as_array().map(<[Value]>::to_vec))
        .unwrap_or_else(|_| fail(&format!("{path} has no `entries` array")))
        .iter()
        .map(|e| {
            let name = e
                .field("name")
                .and_then(|v| v.as_str().map(str::to_string))
                .unwrap_or_else(|_| fail(&format!("{path}: entry without a name")));
            let metric = e
                .field("gflops")
                .or_else(|_| e.field("throughput"))
                .and_then(|v| v.as_f64())
                .unwrap_or_else(|_| {
                    fail(&format!("{path}: entry {name} has no gflops/throughput"))
                });
            (name, metric)
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut max_regression = 0.25f64;
    let mut overhead_below: Option<f64> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-regression" => {
                let v = it.next().unwrap_or_default();
                max_regression = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad --max-regression value {v:?}")));
            }
            "--require-overhead-below" => {
                let v = it.next().unwrap_or_default();
                overhead_below = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("bad overhead threshold {v:?}"))),
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_gate BASELINE.json CURRENT.json \
                     [--max-regression FRAC] [--require-overhead-below FRAC]"
                );
                return;
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.len() != 2 {
        fail("expected exactly two positional arguments: BASELINE.json CURRENT.json");
    }
    let baseline = load(&paths[0]);
    let current = load(&paths[1]);
    let isa_of = |doc: &Value| {
        doc.field("isa")
            .ok()
            .and_then(|v| v.as_str().ok().map(str::to_string))
    };
    if let (Some(base_isa), Some(cur_isa)) = (isa_of(&baseline), isa_of(&current)) {
        if base_isa != cur_isa {
            fail(&format!(
                "ISA mismatch: baseline {} was recorded on `{base_isa}` but the current \
                 run {} used `{cur_isa}` — numbers from different SIMD tiers are not \
                 comparable; regenerate the baseline on this tier (or unset \
                 STENCILMART_NO_SIMD) instead of gating across tiers",
                paths[0], paths[1]
            ));
        }
        println!("isa: {base_isa} (both reports)");
    }
    let base_entries = entries(&baseline, &paths[0]);
    let cur_entries = entries(&current, &paths[1]);

    let mut failures = Vec::new();
    println!(
        "{:<30} {:>12} {:>12} {:>8}",
        "entry", "baseline", "current", "ratio"
    );
    for (name, base_gf) in &base_entries {
        match cur_entries.iter().find(|(n, _)| n == name) {
            None => failures.push(format!("entry {name} missing from current run")),
            Some((_, cur_gf)) => {
                let ratio = cur_gf / base_gf;
                let verdict = if ratio < 1.0 - max_regression {
                    failures.push(format!(
                        "{name} regressed: {base_gf:.2} -> {cur_gf:.2} \
                         ({:.1}% below baseline, tolerance {:.0}%)",
                        (1.0 - ratio) * 100.0,
                        max_regression * 100.0
                    ));
                    "FAIL"
                } else {
                    "ok"
                };
                println!("{name:<30} {base_gf:>12.2} {cur_gf:>12.2} {ratio:>7.2} {verdict}");
            }
        }
    }

    if let Some(threshold) = overhead_below {
        let pct = current
            .field("obs_overhead")
            .and_then(|o| o.field("overhead_pct"))
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|_| fail(&format!("{} has no obs_overhead.overhead_pct", paths[1])));
        let frac = pct / 100.0;
        if frac >= threshold {
            failures.push(format!(
                "observability overhead {pct:.3}% exceeds the {:.1}% budget",
                threshold * 100.0
            ));
        } else {
            println!(
                "obs overhead {pct:.3}% < {:.1}% budget: ok",
                threshold * 100.0
            );
        }
    }

    if failures.is_empty() {
        println!("bench_gate: OK ({} entries compared)", base_entries.len());
    } else {
        for f in &failures {
            eprintln!("bench_gate: {f}");
        }
        std::process::exit(1);
    }
}

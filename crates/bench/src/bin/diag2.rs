//! Diagnostic: train/test MAPE of GBRegressor variants on one regression
//! dataset, to separate underfitting from irreducible noise.

use stencilmart::dataset::{ProfiledCorpus, RegressionDataset};
use stencilmart::PipelineConfig;
use stencilmart_ml::gbdt::tree::TreeConfig;
use stencilmart_ml::gbdt::{GbdtConfig, GbdtRegressor};
use stencilmart_ml::metrics::mape;
use stencilmart_stencil::pattern::Dim;

fn main() {
    let rows: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20000);
    let cfg = PipelineConfig {
        max_regression_rows: rows,
        ..PipelineConfig::default()
    };
    let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
    let ds = RegressionDataset::build(&corpus, &cfg);
    println!("rows: {}, cols: {}", ds.len(), ds.features.cols());
    let n = ds.len();
    let split = n * 4 / 5;
    let train_idx: Vec<usize> = (0..split).collect();
    let test_idx: Vec<usize> = (split..n).collect();
    let x_train = ds.features.select(&train_idx);
    let y_train: Vec<f32> = train_idx.iter().map(|&i| ds.target_ln_ms[i]).collect();

    for (label, rounds, depth, eta, bins) in [
        ("r250 d7 e0.08 b64", 250usize, 7usize, 0.08f32, 64usize),
        ("r500 d8 e0.06 b128", 500, 8, 0.06, 128),
        ("r800 d9 e0.05 b128", 800, 9, 0.05, 128),
    ] {
        let gcfg = GbdtConfig {
            rounds,
            eta,
            subsample: 0.8,
            tree: TreeConfig {
                max_depth: depth,
                min_child_weight: 2.0,
                lambda: 1.0,
                gamma: 0.0,
            },
            bins,
            seed: 0,
        };
        let t0 = std::time::Instant::now();
        let model = GbdtRegressor::fit(&x_train, &y_train, &gcfg);
        let eval = |idx: &[usize]| {
            let pred: Vec<f64> = idx
                .iter()
                .map(|&i| (model.predict_row(ds.features.row(i)) as f64).exp())
                .collect();
            let truth: Vec<f64> = idx
                .iter()
                .map(|&i| (ds.target_ln_ms[i] as f64).exp())
                .collect();
            mape(&pred, &truth)
        };
        println!(
            "{label}: train MAPE {:.1}%, test MAPE {:.1}% ({:.1}s)",
            eval(&train_idx),
            eval(&test_idx),
            t0.elapsed().as_secs_f64()
        );
    }
}

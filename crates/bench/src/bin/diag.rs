//! Diagnostic tool: inspect the OC merging and per-GPU class-label
//! distribution for a freshly built corpus. Not part of the paper's
//! figures — used to sanity-check that the classification task is
//! neither trivial nor degenerate.

use stencilmart::dataset::{ClassificationDataset, ProfiledCorpus};
use stencilmart::PipelineConfig;
use stencilmart_bench::Scale;
use stencilmart_gpusim::OptCombo;
use stencilmart_stencil::pattern::Dim;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Quick);
    let cfg: PipelineConfig = scale.config();
    let ocs = OptCombo::enumerate();
    for dim in [Dim::D2, Dim::D3] {
        println!("=== {dim} ===");
        let corpus = ProfiledCorpus::build(&cfg, dim);
        let merging = corpus.derive_merging(cfg.oc_classes);
        for (gi, group) in merging.groups.iter().enumerate() {
            let names: Vec<String> = group.iter().map(|&i| ocs[i].name()).collect();
            println!(
                "group {gi} (rep {}): {}",
                ocs[merging.representatives[gi]].name(),
                names.join(" ")
            );
        }
        for &gpu in &cfg.gpus {
            let ds = ClassificationDataset::build(&corpus, &merging, gpu);
            let mut counts = vec![0usize; merging.classes()];
            for &l in &ds.labels {
                counts[l] += 1;
            }
            println!("{gpu}: label distribution {counts:?}");
        }
    }
}

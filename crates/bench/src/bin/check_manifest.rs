//! CI guard: validate an observability metrics report.
//!
//! ```text
//! check_manifest METRICS.json [--trace TRACE.json] STAGE...
//! ```
//!
//! Verifies that the report carries a complete run manifest (tool, seed,
//! config hash, worker count, git revision) and that every required
//! pipeline STAGE appears among the recorded spans (matched against the
//! last `/`-segment of each span path, so nesting context does not
//! matter). With `--trace` it additionally checks that the
//! `chrome://tracing` export parses and holds at least one event. Exits
//! nonzero with a message per violation, so the CI smoke job fails loudly
//! when a pipeline stage silently drops out of the instrumentation.

use serde::Value;

fn fail(msg: &str) -> ! {
    eprintln!("check_manifest: {msg}");
    std::process::exit(1);
}

fn load(path: &str) -> Value {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    serde_json::parse_value(&text)
        .unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e:?}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut metrics_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => {
                let v = it.next().unwrap_or_default();
                if v.is_empty() {
                    fail("--trace requires a path");
                }
                trace_path = Some(v);
            }
            "--help" | "-h" => {
                println!("usage: check_manifest METRICS.json [--trace TRACE.json] STAGE...");
                return;
            }
            other if metrics_path.is_none() => metrics_path = Some(other.to_string()),
            other => required.push(other.to_string()),
        }
    }
    let metrics_path = metrics_path.unwrap_or_else(|| fail("missing METRICS.json argument"));

    let doc = load(&metrics_path);
    let manifest = doc
        .field("manifest")
        .unwrap_or_else(|_| fail("report has no `manifest` object"));

    for key in ["tool", "git_rev", "config_hash"] {
        let v = manifest
            .field(key)
            .and_then(|v| v.as_str().map(str::to_string))
            .unwrap_or_else(|_| fail(&format!("manifest.{key} missing or not a string")));
        if v.is_empty() {
            fail(&format!("manifest.{key} is empty"));
        }
        if key == "config_hash" && (v.len() != 16 || !v.bytes().all(|b| b.is_ascii_hexdigit())) {
            fail(&format!(
                "manifest.config_hash {v:?} is not a 64-bit hex hash"
            ));
        }
    }
    manifest
        .field("seed")
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|_| fail("manifest.seed missing or not an integer"));
    let workers = manifest
        .field("workers")
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|_| fail("manifest.workers missing or not an integer"));
    if workers == 0 {
        fail("manifest.workers is zero");
    }

    let stages = manifest
        .field("stages")
        .and_then(|v| v.as_array().map(<[Value]>::to_vec))
        .unwrap_or_else(|_| fail("manifest.stages missing or not an array"));
    let stage_names: Vec<String> = stages
        .iter()
        .filter_map(|s| {
            s.field("path")
                .and_then(|p| p.as_str().map(str::to_string))
                .ok()
        })
        .map(|p| p.rsplit('/').next().unwrap_or_default().to_string())
        .collect();
    let missing: Vec<&String> = required
        .iter()
        .filter(|r| !stage_names.iter().any(|s| s == *r))
        .collect();
    if !missing.is_empty() {
        eprintln!("check_manifest: recorded stages: {stage_names:?}");
        fail(&format!(
            "required stages missing from manifest: {missing:?}"
        ));
    }

    if let Some(trace) = trace_path {
        let tdoc = load(&trace);
        let events = tdoc
            .field("traceEvents")
            .and_then(|v| v.as_array().map(<[Value]>::len))
            .unwrap_or_else(|_| fail(&format!("{trace} has no `traceEvents` array")));
        if events == 0 {
            fail(&format!("{trace} holds zero trace events"));
        }
        println!("check_manifest: trace OK ({events} events)");
    }
    println!(
        "check_manifest: OK ({} stages recorded, {} required present)",
        stage_names.len(),
        required.len()
    );
}

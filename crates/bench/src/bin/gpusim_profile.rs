//! Headless profiler-throughput benchmark.
//!
//! ```text
//! gpusim_profile [--quick] [--workers N] [OUTPUT.json]
//! ```
//!
//! Times the corpus-profiling pipeline — every stencil × 30 OCs × sampled
//! parameter settings × the full multi-vendor GPU matrix, the dominant
//! cost of StencilMART data collection — and writes `BENCH_gpusim.json`
//! (default) with per-vendor throughput entries:
//!
//! * `profile_corpus_{2d,3d}_{nvidia,amd}` — profiled (stencil, GPU)
//!   tasks per second over that vendor's presets,
//! * `simulate_calls_{2d,3d}_{nvidia,amd}` — simulator evaluations per
//!   second (successful instances + crashes), counted by the obs layer.
//!
//! The report also records the top-level `gpu_matrix` size
//! (`GpuId::ALL.len()`); `bench_gate` refuses to compare reports whose
//! matrices differ, since per-vendor throughput over different preset
//! sets is not the same measurement. Entries carry a `throughput` field
//! (higher is better) which the CI `bench_gate` compares against the
//! committed baseline exactly like the `gflops` field of
//! `BENCH_ml_kernels.json`. `--workers` pins the worker pool (default 4,
//! matching the perf-gate runners); `--quick` shrinks the corpus for CI
//! smoke runs.

use serde::Value;
use std::time::Instant;
use stencilmart_gpusim::{profile_corpus_multi, GpuArch, GpuId, NoiseModel, ProfileConfig, Vendor};
use stencilmart_obs::{self as obs, counters};
use stencilmart_stencil::generator::StencilGenerator;
use stencilmart_stencil::pattern::Dim;

/// Corpus scale and repetition budget.
#[derive(Clone, Copy)]
struct Budget {
    stencils: usize,
    samples: usize,
}

impl Budget {
    const FULL: Budget = Budget {
        stencils: 48,
        samples: 3,
    };
    // Same corpus as FULL (so CI compares like for like against the
    // committed baseline), just fewer timing repetitions.
    const QUICK: Budget = Budget {
        stencils: 48,
        samples: 2,
    };
}

fn entry(name: &str, shape: &str, unit: &str, throughput: f64, elapsed_s: f64) -> Value {
    Value::Object(vec![
        ("name".into(), Value::Str(name.into())),
        ("shape".into(), Value::Str(shape.into())),
        ("unit".into(), Value::Str(unit.into())),
        ("throughput".into(), Value::Float(throughput)),
        ("seconds_per_run".into(), Value::Float(elapsed_s)),
    ])
}

/// Profile one corpus on the given presets once; returns (seconds,
/// simulate calls made).
fn run_once(
    patterns: &[stencilmart_stencil::pattern::StencilPattern],
    grid: usize,
    archs: &[GpuArch],
) -> (f64, u64) {
    let cfg = ProfileConfig {
        samples_per_oc: 8,
        noise: NoiseModel::default(),
        seed: 0x5EED,
    };
    let before = counters::OC_INSTANCES_SIMULATED.get() + counters::CRASHES_OBSERVED.get();
    let t = Instant::now();
    let out = profile_corpus_multi(patterns, grid, archs, &cfg);
    std::hint::black_box(&out);
    let secs = t.elapsed().as_secs_f64();
    let calls = counters::OC_INSTANCES_SIMULATED.get() + counters::CRASHES_OBSERVED.get() - before;
    (secs, calls)
}

/// The matrix's vendors, in `GpuId::ALL` order.
fn vendors() -> Vec<Vendor> {
    let mut vendors = Vec::new();
    for g in GpuId::ALL {
        if !vendors.contains(&g.vendor()) {
            vendors.push(g.vendor());
        }
    }
    vendors
}

fn bench_dim(budget: Budget, dim: Dim, entries: &mut Vec<Value>) {
    let grid = if dim == Dim::D2 { 8192 } else { 512 };
    let mut generator = StencilGenerator::new(0xBE7C ^ dim.rank() as u64);
    let patterns = generator.generate_corpus(dim, 4, budget.stencils);
    // One entry pair per vendor: AMD presets exercise different
    // occupancy/crash paths (wavefront granules, 64 KiB LDS rejections,
    // Infinity-Cache boost) than NVIDIA ones, so a slowdown confined to
    // one vendor's code path must not hide in a matrix-wide average.
    for vendor in vendors() {
        let archs: Vec<GpuArch> = GpuId::ALL
            .into_iter()
            .filter(|g| g.vendor() == vendor)
            .map(GpuArch::preset)
            .collect();
        let tag = vendor.name().to_ascii_lowercase();
        let tasks = (patterns.len() * archs.len()) as f64;
        eprintln!(
            "[gpusim_profile] {dim} {tag}: {} stencils x {} GPUs...",
            patterns.len(),
            archs.len()
        );
        let (mut best_secs, mut calls) = (f64::INFINITY, 0u64);
        for _ in 0..budget.samples {
            let (secs, c) = run_once(&patterns, grid, &archs);
            best_secs = best_secs.min(secs);
            calls = c; // identical every run (deterministic pipeline)
        }
        entries.push(entry(
            &format!("profile_corpus_{dim}_{tag}"),
            &format!(
                "{} stencils x {} {} GPUs x 30 OCs x 8 samples",
                patterns.len(),
                archs.len(),
                vendor.name()
            ),
            "stencil-GPU tasks/s",
            tasks / best_secs,
            best_secs,
        ));
        entries.push(entry(
            &format!("simulate_calls_{dim}_{tag}"),
            &format!("{calls} simulator evaluations"),
            "simulate calls/s",
            calls as f64 / best_secs,
            best_secs,
        ));
    }
}

fn main() {
    let mut out_path = "BENCH_gpusim.json".to_string();
    let mut budget = Budget::FULL;
    let mut quick = false;
    let mut workers = 4usize;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {
                quick = true;
                budget = Budget::QUICK;
            }
            "--workers" => {
                let v = it.next().unwrap_or_default();
                workers = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --workers value {v:?}");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("usage: gpusim_profile [--quick] [--workers N] [OUTPUT.json]");
                return;
            }
            other => out_path = other.to_string(),
        }
    }
    // Pin the pool so baseline and CI runs compare like for like.
    std::env::set_var("STENCILMART_THREADS", workers.to_string());
    obs::set_enabled(true);
    obs::reset();

    let mut entries = Vec::new();
    bench_dim(budget, Dim::D2, &mut entries);
    bench_dim(budget, Dim::D3, &mut entries);

    let doc = Value::Object(vec![
        (
            "description".into(),
            Value::Str("profiler throughput: corpus x 30 OCs, per vendor of the GPU matrix".into()),
        ),
        (
            "isa".into(),
            Value::Str(obs::runtime::simd_isa().name().into()),
        ),
        ("gpu_matrix".into(), Value::Float(GpuId::ALL.len() as f64)),
        ("workers".into(), Value::Float(workers as f64)),
        ("quick".into(), Value::Bool(quick)),
        ("entries".into(), Value::Array(entries)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&out_path, format!("{json}\n")).expect("write output");
    println!("wrote {out_path}");
    if let Value::Object(fields) = &doc {
        if let Some((_, Value::Array(items))) = fields.iter().find(|(k, _)| k == "entries") {
            for e in items {
                let get = |key: &str| e.field(key).ok().cloned().unwrap_or(Value::Null);
                println!(
                    "  {:<28} {:>12} {}",
                    match get("name") {
                        Value::Str(s) => s,
                        _ => String::new(),
                    },
                    match get("throughput") {
                        Value::Float(f) => format!("{f:.1}"),
                        _ => String::new(),
                    },
                    match get("unit") {
                        Value::Str(s) => s,
                        _ => String::new(),
                    },
                );
            }
        }
    }
}

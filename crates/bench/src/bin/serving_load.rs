//! Load generator and CI smoke client for the `advisord` daemon.
//!
//! ```text
//! serving_load --addr ADDR [--threads 4] [--window 64] [--duration-ms 2000]
//!              [--mode closed|rate] [--rate REQS_PER_SEC]
//!              [--out BENCH_serving.json] [--daemon-metrics PATH]
//!              [--shutdown]
//! serving_load --smoke --addr ADDR [--requests-per-thread N]
//!              [--daemon-metrics PATH]
//! ```
//!
//! Bench mode drives N client threads over persistent connections —
//! closed-loop (a pipelined window of in-flight requests per thread) or
//! open-loop fixed-rate — and writes a `BENCH_serving.json` report
//! (requests/s as a higher-is-better `throughput` entry, tail latency
//! as a lower-is-better `p99_us` entry, the serving SIMD tier as
//! top-level `isa`) that `bench_gate` understands.
//!
//! Smoke mode is the CI end-to-end check: concurrent valid traffic plus
//! a hostile connection firing malformed, truncated, and length-lying
//! frames, one hot-swap `Reload` mid-traffic, then `Shutdown`. It exits
//! nonzero if any valid request goes unanswered, if the decoder's error
//! discipline is violated, or if the daemon's metrics report (when
//! given) does not record the bundle swap.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use stencilmart::wire::{
    encode_request, Frame, FrameDecoder, PatternSpec, Reply, Request, Response,
};
use stencilmart_stencil::canonical;
use stencilmart_stencil::pattern::Dim;

const USAGE: &str = "usage:\n  \
    serving_load --addr ADDR [--threads 4] [--window 64] [--duration-ms 2000]\n               \
    [--mode closed|rate] [--rate N] [--out PATH] [--daemon-metrics PATH]\n               \
    [--shutdown]\n  \
    serving_load --smoke --addr ADDR [--requests-per-thread N] [--daemon-metrics PATH]";

fn fail(msg: &str) -> ! {
    eprintln!("serving_load: {msg}");
    std::process::exit(1);
}

#[derive(Clone)]
struct Config {
    addr: String,
    threads: usize,
    window: usize,
    duration_ms: u64,
    mode: Mode,
    rate: u64,
    out: Option<PathBuf>,
    daemon_metrics: Option<PathBuf>,
    shutdown: bool,
    smoke: bool,
    requests_per_thread: u64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Closed,
    Rate,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        addr: String::new(),
        threads: 4,
        window: 64,
        duration_ms: 2000,
        mode: Mode::Closed,
        rate: 20_000,
        out: None,
        daemon_metrics: None,
        shutdown: false,
        smoke: false,
        requests_per_thread: 2000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |flag: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
        };
        match a.as_str() {
            "--addr" => cfg.addr = val("--addr"),
            "--threads" => cfg.threads = num(&val("--threads")) as usize,
            "--window" => cfg.window = num(&val("--window")) as usize,
            "--duration-ms" => cfg.duration_ms = num(&val("--duration-ms")),
            "--rate" => cfg.rate = num(&val("--rate")),
            "--mode" => {
                cfg.mode = match val("--mode").as_str() {
                    "closed" => Mode::Closed,
                    "rate" => Mode::Rate,
                    other => fail(&format!("unknown mode {other:?}; use closed|rate")),
                }
            }
            "--out" => cfg.out = Some(PathBuf::from(val("--out"))),
            "--daemon-metrics" => cfg.daemon_metrics = Some(PathBuf::from(val("--daemon-metrics"))),
            "--shutdown" => cfg.shutdown = true,
            "--smoke" => cfg.smoke = true,
            "--requests-per-thread" => cfg.requests_per_thread = num(&val("--requests-per-thread")),
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            other => fail(&format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if cfg.addr.is_empty() {
        fail(&format!("--addr is required\n{USAGE}"));
    }
    if cfg.threads == 0 || cfg.window == 0 {
        fail("--threads and --window must be positive");
    }
    cfg
}

fn num(s: &str) -> u64 {
    s.parse()
        .unwrap_or_else(|_| fail(&format!("expected an integer, got {s:?}")))
}

/// 2-D canonical stencil names to cycle through (the CI bundle is
/// trained at dim 2).
fn request_names() -> Vec<String> {
    canonical::suite()
        .into_iter()
        .filter(|c| c.pattern.dim() == Dim::D2)
        .map(|c| c.name)
        .collect()
}

fn connect(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr)
        .unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")));
    let _ = stream.set_nodelay(true);
    stream
}

/// Read frames until `want` responses have arrived, feeding latencies
/// from the per-id send stamps. Returns the responses seen.
fn read_responses(
    stream: &mut TcpStream,
    dec: &mut FrameDecoder,
    want: usize,
    sent_at: &HashMap<u64, Instant>,
    latencies_us: &mut Vec<u64>,
) -> Result<Vec<Response>, String> {
    let mut rbuf = vec![0u8; 64 * 1024];
    let mut got: Vec<Response> = Vec::with_capacity(want);
    while got.len() < want {
        let n = match stream.read(&mut rbuf) {
            Ok(0) => return Err("server closed the connection mid-stream".to_string()),
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(e) => return Err(format!("read failed: {e}")),
        };
        dec.push(&rbuf[..n]);
        loop {
            match dec.next_frame() {
                Ok(None) => break,
                Ok(Some(Frame::Response(resp))) => {
                    if let Some(t0) = sent_at.get(&resp.id) {
                        let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                        latencies_us.push(us);
                    }
                    got.push(resp);
                }
                Ok(Some(Frame::Request { .. })) => {
                    return Err("server sent a request frame".to_string())
                }
                Err(e) => return Err(format!("response decode failed: {}", e.error)),
            }
        }
    }
    Ok(got)
}

#[derive(Default)]
struct ClientStats {
    sent: u64,
    answered: u64,
    ok: u64,
    rejected: u64,
    latencies_us: Vec<u64>,
}

/// Closed-loop worker: keep `window` requests pipelined on one
/// connection until `deadline` (or `max_requests`, whichever first).
fn closed_loop(
    addr: &str,
    names: &[String],
    thread_idx: u64,
    window: usize,
    deadline: Instant,
    max_requests: u64,
    hostile_every: Option<u64>,
) -> Result<ClientStats, String> {
    let mut stream = connect(addr);
    let mut dec = FrameDecoder::new();
    let mut stats = ClientStats::default();
    let mut seq: u64 = 0;
    while Instant::now() < deadline && stats.sent < max_requests {
        let burst = window.min((max_requests - stats.sent) as usize);
        let mut wbuf: Vec<u8> = Vec::with_capacity(burst * 48);
        let mut sent_at: HashMap<u64, Instant> = HashMap::with_capacity(burst);
        for _ in 0..burst {
            let id = (thread_idx << 32) | seq;
            let gpu = match hostile_every {
                // Every Nth request asks for a GPU that does not exist:
                // the response must be a structured error, not a drop.
                Some(k) if seq % k == k - 1 => "NoSuchGpu".to_string(),
                _ => "V100".to_string(),
            };
            let req = Request::BestOc {
                gpu,
                pattern: PatternSpec::Name(names[(seq as usize) % names.len()].clone()),
            };
            sent_at.insert(id, Instant::now());
            wbuf.extend_from_slice(&encode_request(id, &req));
            seq += 1;
        }
        stream
            .write_all(&wbuf)
            .map_err(|e| format!("write failed: {e}"))?;
        stats.sent += burst as u64;
        let responses = read_responses(
            &mut stream,
            &mut dec,
            burst,
            &sent_at,
            &mut stats.latencies_us,
        )?;
        for resp in &responses {
            if !sent_at.contains_key(&resp.id) {
                return Err(format!("response for unknown id {}", resp.id));
            }
            stats.answered += 1;
            match &resp.result {
                Ok(_) => stats.ok += 1,
                Err(_) => stats.rejected += 1,
            }
        }
    }
    Ok(stats)
}

/// Open-loop fixed-rate worker: send on a schedule, drain responses
/// opportunistically, collect stragglers at the end.
fn rate_loop(
    addr: &str,
    names: &[String],
    thread_idx: u64,
    rate_per_thread: u64,
    deadline: Instant,
) -> Result<ClientStats, String> {
    let mut stream = connect(addr);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(1)));
    let mut dec = FrameDecoder::new();
    let mut stats = ClientStats::default();
    let mut sent_at: HashMap<u64, Instant> = HashMap::new();
    let interval = Duration::from_nanos(1_000_000_000 / rate_per_thread.max(1));
    let start = Instant::now();
    let mut seq: u64 = 0;
    let mut rbuf = vec![0u8; 64 * 1024];
    let mut drain = |dec: &mut FrameDecoder,
                     stream: &mut TcpStream,
                     sent_at: &HashMap<u64, Instant>,
                     stats: &mut ClientStats|
     -> Result<(), String> {
        match stream.read(&mut rbuf) {
            Ok(0) => return Err("server closed the connection".to_string()),
            Ok(n) => dec.push(&rbuf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(format!("read failed: {e}")),
        }
        loop {
            match dec.next_frame() {
                Ok(None) => break,
                Ok(Some(Frame::Response(resp))) => {
                    if let Some(t0) = sent_at.get(&resp.id) {
                        stats
                            .latencies_us
                            .push(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                    }
                    stats.answered += 1;
                    match &resp.result {
                        Ok(_) => stats.ok += 1,
                        Err(_) => stats.rejected += 1,
                    }
                }
                Ok(Some(Frame::Request { .. })) => {
                    return Err("server sent a request frame".to_string())
                }
                Err(e) => return Err(format!("response decode failed: {}", e.error)),
            }
        }
        Ok(())
    };
    while Instant::now() < deadline {
        let due =
            start + interval * u32::try_from(seq.min(u64::from(u32::MAX))).unwrap_or(u32::MAX);
        if Instant::now() >= due {
            let id = (thread_idx << 32) | seq;
            let req = Request::BestOc {
                gpu: "V100".to_string(),
                pattern: PatternSpec::Name(names[(seq as usize) % names.len()].clone()),
            };
            sent_at.insert(id, Instant::now());
            stream
                .write_all(&encode_request(id, &req))
                .map_err(|e| format!("write failed: {e}"))?;
            stats.sent += 1;
            seq += 1;
        }
        drain(&mut dec, &mut stream, &sent_at, &mut stats)?;
    }
    // Collect stragglers for up to two seconds.
    let grace = Instant::now() + Duration::from_secs(2);
    while stats.answered < stats.sent && Instant::now() < grace {
        drain(&mut dec, &mut stream, &sent_at, &mut stats)?;
    }
    Ok(stats)
}

/// Send one request on a fresh connection and return its response.
fn roundtrip(addr: &str, id: u64, req: &Request) -> Result<Response, String> {
    let mut stream = connect(addr);
    stream
        .write_all(&encode_request(id, req))
        .map_err(|e| format!("write failed: {e}"))?;
    let mut dec = FrameDecoder::new();
    let empty = HashMap::new();
    let mut lat = Vec::new();
    let mut resp = read_responses(&mut stream, &mut dec, 1, &empty, &mut lat)?;
    Ok(resp.pop().expect("one response"))
}

fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

/// Pull a named numeric leaf out of the daemon's metrics JSON, waiting
/// for the file to appear (the daemon writes it after its accept loop
/// exits).
fn daemon_metric(path: &Path, keys: &[&str]) -> Option<f64> {
    let deadline = Instant::now() + Duration::from_secs(10);
    let text = loop {
        match std::fs::read_to_string(path) {
            Ok(t) => break t,
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => {
                eprintln!("serving_load: cannot read {}: {e}", path.display());
                return None;
            }
        }
    };
    let mut v = serde_json::parse_value(&text).ok()?;
    for key in keys {
        v = v.field(key).ok()?.clone();
    }
    v.as_f64().ok()
}

fn run_bench(cfg: &Config) -> i32 {
    let names = Arc::new(request_names());
    let deadline = Instant::now() + Duration::from_millis(cfg.duration_ms);
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for thread_idx in 0..cfg.threads as u64 {
        let cfg = cfg.clone();
        let names = Arc::clone(&names);
        handles.push(std::thread::spawn(move || match cfg.mode {
            Mode::Closed => closed_loop(
                &cfg.addr,
                &names,
                thread_idx,
                cfg.window,
                deadline,
                u64::MAX,
                None,
            ),
            Mode::Rate => rate_loop(
                &cfg.addr,
                &names,
                thread_idx,
                cfg.rate / cfg.threads as u64,
                deadline,
            ),
        }));
    }
    let mut all = ClientStats::default();
    for h in handles {
        match h.join().expect("client thread panicked") {
            Ok(s) => {
                all.sent += s.sent;
                all.answered += s.answered;
                all.ok += s.ok;
                all.rejected += s.rejected;
                all.latencies_us.extend(s.latencies_us);
            }
            Err(e) => fail(&e),
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    if cfg.shutdown {
        if let Err(e) = roundtrip(&cfg.addr, u64::MAX, &Request::Shutdown) {
            fail(&format!("shutdown frame failed: {e}"));
        }
    }
    let mean_batch = cfg
        .daemon_metrics
        .as_deref()
        .and_then(|p| daemon_metric(p, &["histograms", "batch_size", "mean"]))
        .unwrap_or(0.0);
    all.latencies_us.sort_unstable();
    let rps = all.answered as f64 / wall_s;
    let p50 = quantile(&all.latencies_us, 0.50);
    let p99 = quantile(&all.latencies_us, 0.99);
    let mode = match cfg.mode {
        Mode::Closed => "closed",
        Mode::Rate => "rate",
    };
    let isa = stencilmart_obs::runtime::simd_isa().name();
    println!(
        "mode={mode} threads={} answered={} in {wall_s:.2}s -> {rps:.0} req/s, \
         p50={p50}us p99={p99}us, mean batch {mean_batch:.1}, isa {isa}",
        cfg.threads, all.answered
    );
    if all.answered < all.sent {
        fail(&format!(
            "dropped requests: sent {} answered {}",
            all.sent, all.answered
        ));
    }
    if all.rejected > 0 {
        fail(&format!("{} valid requests were rejected", all.rejected));
    }
    if let Some(out) = &cfg.out {
        let report = format!(
            "{{\n  \"description\": \"advisord serving throughput and tail latency \
             ({mode}-loop, {} client threads, window {})\",\n  \"isa\": \"{isa}\",\n  \
             \"threads\": {},\n  \"window\": {},\n  \"mode\": \"{mode}\",\n  \
             \"total_requests\": {},\n  \"mean_batch_size\": {mean_batch:.3},\n  \
             \"entries\": [\n    {{\n      \"name\": \"{mode}_{}t\",\n      \
             \"unit\": \"req/s\",\n      \"throughput\": {rps:.1}\n    }},\n    {{\n      \
             \"name\": \"{mode}_{}t_p99\",\n      \"unit\": \"us\",\n      \
             \"p50_us\": {p50},\n      \"p99_us\": {p99}\n    }}\n  ]\n}}\n",
            cfg.threads,
            cfg.window,
            cfg.threads,
            cfg.window,
            all.answered,
            cfg.threads,
            cfg.threads,
        );
        if let Err(e) = std::fs::write(out, report) {
            fail(&format!("cannot write {}: {e}", out.display()));
        }
        println!("wrote {}", out.display());
    }
    0
}

// ---------------------------------------------------------------------
// Smoke mode
// ---------------------------------------------------------------------

/// Fire hostile bytes at the daemon and check the decoder's error
/// discipline: structured error frames for recoverable corruption,
/// connection close (without taking the daemon down) for framing lies.
fn hostile_traffic(addr: &str) -> Result<u64, String> {
    let mut rejected = 0u64;

    // (a) Corrupt checksum: recoverable — expect an error frame, then a
    // Ping on the SAME connection must still be answered.
    {
        let mut stream = connect(addr);
        let mut frame = encode_request(1, &Request::Ping);
        let last = frame.len() - 1;
        frame[last] ^= 0xff;
        frame.extend_from_slice(&encode_request(2, &Request::Ping));
        stream
            .write_all(&frame)
            .map_err(|e| format!("hostile write failed: {e}"))?;
        let mut dec = FrameDecoder::new();
        let empty = HashMap::new();
        let mut lat = Vec::new();
        let got = read_responses(&mut stream, &mut dec, 2, &empty, &mut lat)?;
        let errors = got.iter().filter(|r| r.result.is_err()).count();
        let oks = got.iter().filter(|r| r.result.is_ok()).count();
        if errors != 1 || oks != 1 {
            return Err(format!(
                "checksum corruption: expected 1 error + 1 pong, got {errors} errors, {oks} oks"
            ));
        }
        rejected += 1;
    }

    // (b) Pure garbage that parses as an oversized length: fatal — the
    // daemon replies with an error frame and/or closes this connection.
    {
        let mut stream = connect(addr);
        let garbage = [0xffu8; 256];
        stream
            .write_all(&garbage)
            .map_err(|e| format!("garbage write failed: {e}"))?;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let mut buf = [0u8; 4096];
        // Read until close; any bytes that arrive must decode as error
        // responses, not valid replies.
        let mut dec = FrameDecoder::new();
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    dec.push(&buf[..n]);
                    while let Ok(Some(frame)) = dec.next_frame() {
                        match frame {
                            Frame::Response(r) if r.result.is_err() => rejected += 1,
                            other => return Err(format!("garbage produced {other:?}")),
                        }
                    }
                }
                Err(_) => break,
            }
        }
    }

    // (c) Truncated frame then close: the daemon just waits for the
    // rest, sees EOF, and moves on. Nothing to assert beyond "the next
    // connection still works", which (d) covers.
    {
        let mut stream = connect(addr);
        let frame = encode_request(3, &Request::Ping);
        stream
            .write_all(&frame[..frame.len() - 2])
            .map_err(|e| format!("truncated write failed: {e}"))?;
        drop(stream);
    }

    // (d) A fresh connection after all of the above must serve.
    let resp = roundtrip(addr, 4, &Request::Ping)?;
    if resp.result.is_err() {
        return Err("ping after hostile traffic was rejected".to_string());
    }
    Ok(rejected)
}

fn run_smoke(cfg: &Config) -> i32 {
    let names = Arc::new(request_names());
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut handles = Vec::new();
    // Valid traffic: every 10th request uses an unknown GPU and must
    // come back as a structured error (still "answered").
    for thread_idx in 0..cfg.threads as u64 {
        let cfg = cfg.clone();
        let names = Arc::clone(&names);
        handles.push(std::thread::spawn(move || {
            closed_loop(
                &cfg.addr,
                &names,
                thread_idx,
                cfg.window.min(32),
                deadline,
                cfg.requests_per_thread,
                Some(10),
            )
        }));
    }
    // Hostile traffic rides alongside on its own connections.
    let hostile = {
        let addr = cfg.addr.clone();
        std::thread::spawn(move || hostile_traffic(&addr))
    };
    // Mid-traffic hot-swap.
    std::thread::sleep(Duration::from_millis(100));
    let reload_version = match roundtrip(&cfg.addr, 9_000_000, &Request::Reload) {
        Ok(resp) => match resp.result {
            Ok(Reply::Reloaded { version }) => version,
            other => fail(&format!("reload answered {other:?}")),
        },
        Err(e) => fail(&format!("reload frame failed: {e}")),
    };
    if reload_version < 2 {
        fail(&format!(
            "reload produced version {reload_version}, expected >= 2"
        ));
    }
    let mut all = ClientStats::default();
    for h in handles {
        match h.join().expect("smoke thread panicked") {
            Ok(s) => {
                all.sent += s.sent;
                all.answered += s.answered;
                all.ok += s.ok;
                all.rejected += s.rejected;
            }
            Err(e) => fail(&format!("valid traffic failed: {e}")),
        }
    }
    let hostile_rejected = match hostile.join().expect("hostile thread panicked") {
        Ok(n) => n,
        Err(e) => fail(&format!("hostile traffic check failed: {e}")),
    };
    if all.answered != all.sent {
        fail(&format!(
            "dropped valid requests: sent {} answered {}",
            all.sent, all.answered
        ));
    }
    let expected_rejected = all.sent / 10;
    if all.rejected != expected_rejected {
        fail(&format!(
            "expected exactly {expected_rejected} structured rejections (1 in 10), got {}",
            all.rejected
        ));
    }
    // Clean shutdown.
    if let Err(e) = roundtrip(&cfg.addr, u64::MAX, &Request::Shutdown) {
        fail(&format!("shutdown frame failed: {e}"));
    }
    // The daemon's own report must record the swap and zero panics
    // (a panicked batcher would have dropped requests above anyway).
    if let Some(metrics) = &cfg.daemon_metrics {
        let swaps = daemon_metric(metrics, &["counters", "bundle_swaps"]).unwrap_or(-1.0);
        if swaps < 1.0 {
            fail(&format!(
                "daemon metrics report {} bundle_swaps, expected >= 1",
                swaps
            ));
        }
        let decode_errors =
            daemon_metric(metrics, &["counters", "wire_decode_errors"]).unwrap_or(0.0);
        if decode_errors < 1.0 {
            fail("daemon metrics did not count the hostile frames");
        }
        println!("daemon metrics: bundle_swaps={swaps} wire_decode_errors={decode_errors}");
    }
    println!(
        "smoke ok: sent={} answered={} ok={} rejected={} hostile_rejected={hostile_rejected} \
         reload_version={reload_version}",
        all.sent, all.answered, all.ok, all.rejected
    );
    0
}

fn main() {
    let cfg = parse_args();
    let code = if cfg.smoke {
        run_smoke(&cfg)
    } else {
        run_bench(&cfg)
    };
    std::process::exit(code);
}

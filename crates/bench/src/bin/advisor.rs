//! Train-and-save or load-and-serve StencilMART model bundles.
//!
//! ```text
//! advisor train --out BUNDLE [--scale quick|default|paper] [--dim 2|3]
//!               [--classifier convnet|fcnet|gbdt]
//!               [--regressor mlp|convmlp|gbdt] [--metrics-out PATH]
//! advisor serve --bundle BUNDLE [--requests PATH] [--metrics-out PATH]
//! ```
//!
//! `serve` reads JSONL requests (from `--requests` or stdin) and writes
//! one JSON response per line to stdout. Malformed lines, unknown GPUs,
//! wrong-dimensionality stencils, and corrupt bundles all produce
//! structured `{"ok":false,...}` responses — the process never panics on
//! input.
//!
//! Request forms (one JSON object per line):
//!
//! ```text
//! {"op":"best_oc","gpu":"V100","stencil":"star2d1r"}
//! {"op":"best_oc","gpu":"P100","offsets":[[1,0],[-1,0],[0,1],[0,-1]]}
//! {"op":"predict_time","gpu":"A100","stencil":"box2d1r","oc":"ST_BM"}
//! {"op":"rank_gpus","criterion":"cost","stencil":"star2d2r","oc":"ST"}
//! ```
//!
//! Stencils are named from the canonical suite or given as explicit
//! offsets (the origin is implicit). `predict_time` uses the OC's
//! default parameter setting. `rank_gpus` orders the criterion's GPUs by
//! predicted score (ascending; `criterion` is `perf` or `cost`).

use std::io::BufRead;
use std::path::{Path, PathBuf};

use stencilmart::api::{Predictor, StencilMart};
use stencilmart::models::{ClassifierKind, RegressorKind};
use stencilmart::serve::jsonl;
use stencilmart_bench::Scale;
use stencilmart_obs as obs;
use stencilmart_stencil::pattern::Dim;

fn main() {
    let mut args = std::env::args().skip(1);
    let code = match args.next().as_deref() {
        Some("train") => cmd_train(args.collect()),
        Some("serve") => cmd_serve(args.collect()),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            if std::env::args().nth(1).is_none() {
                2
            } else {
                0
            }
        }
        Some(other) => {
            eprintln!("unknown subcommand {other:?}\n{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

const USAGE: &str = "usage:\n  \
    advisor train --out BUNDLE [--scale quick|default|paper] [--dim 2|3]\n         \
    [--classifier convnet|fcnet|gbdt] [--regressor mlp|convmlp|gbdt]\n         \
    [--metrics-out PATH]\n  \
    advisor serve --bundle BUNDLE [--requests PATH] [--metrics-out PATH]";

/// Write the observability report + chrome trace next to it.
fn emit_metrics(path: &Path, tool: &str, seed: u64, config_repr: &str) {
    let manifest = obs::RunManifest::new(tool, seed, config_repr);
    obs::report::write_metrics(path, &manifest).expect("write metrics report");
    let trace = obs::report::trace_path_for(path);
    obs::report::write_chrome_trace(&trace).expect("write chrome trace");
    eprintln!("[metrics] wrote {} and {}", path.display(), trace.display());
}

fn cmd_train(args: Vec<String>) -> i32 {
    let mut out: Option<PathBuf> = None;
    let mut scale = Scale::Default;
    let mut dim = Dim::D2;
    let mut classifier = ClassifierKind::Gbdt;
    let mut regressor = RegressorKind::GbRegressor;
    let mut metrics_out: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--out" => out = Some(PathBuf::from(val("--out"))),
            "--scale" => {
                let v = val("--scale");
                scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale {v:?}; use quick|default|paper");
                    std::process::exit(2);
                });
            }
            "--dim" => {
                dim = match val("--dim").as_str() {
                    "2" => Dim::D2,
                    "3" => Dim::D3,
                    v => {
                        eprintln!("unknown dim {v:?}; use 2|3");
                        return 2;
                    }
                };
            }
            "--classifier" => {
                classifier = match val("--classifier").as_str() {
                    "convnet" => ClassifierKind::ConvNet,
                    "fcnet" => ClassifierKind::FcNet,
                    "gbdt" => ClassifierKind::Gbdt,
                    v => {
                        eprintln!("unknown classifier {v:?}; use convnet|fcnet|gbdt");
                        return 2;
                    }
                };
            }
            "--regressor" => {
                regressor = match val("--regressor").as_str() {
                    "mlp" => RegressorKind::Mlp,
                    "convmlp" => RegressorKind::ConvMlp,
                    "gbdt" => RegressorKind::GbRegressor,
                    v => {
                        eprintln!("unknown regressor {v:?}; use mlp|convmlp|gbdt");
                        return 2;
                    }
                };
            }
            "--metrics-out" => metrics_out = Some(PathBuf::from(val("--metrics-out"))),
            other => {
                eprintln!("unknown flag {other:?}\n{USAGE}");
                return 2;
            }
        }
    }
    let Some(out) = out else {
        eprintln!("train requires --out\n{USAGE}");
        return 2;
    };
    let cfg = scale.config();
    let config_repr = serde_json::to_string(&cfg).expect("serialize config");
    let seed = cfg.seed;
    eprintln!(
        "[train] {} stencils/dim on {} GPUs ({dim})...",
        cfg.stencils_per_dim,
        cfg.gpus.len()
    );
    let t0 = std::time::Instant::now();
    let mut mart = StencilMart::train(cfg, dim, classifier, regressor);
    eprintln!("[train] done in {:.1}s", t0.elapsed().as_secs_f64());
    if let Err(e) = mart.save(&out, "advisor") {
        eprintln!("error: failed to save bundle: {e}");
        return 1;
    }
    eprintln!("[train] wrote {}", out.display());
    if let Some(path) = metrics_out {
        emit_metrics(&path, "advisor", seed, &config_repr);
    }
    0
}

fn cmd_serve(args: Vec<String>) -> i32 {
    let mut bundle: Option<PathBuf> = None;
    let mut requests: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--bundle" => bundle = Some(PathBuf::from(val("--bundle"))),
            "--requests" => requests = Some(PathBuf::from(val("--requests"))),
            "--metrics-out" => metrics_out = Some(PathBuf::from(val("--metrics-out"))),
            other => {
                eprintln!("unknown flag {other:?}\n{USAGE}");
                return 2;
            }
        }
    }
    let Some(bundle_path) = bundle else {
        eprintln!("serve requires --bundle\n{USAGE}");
        return 2;
    };
    let mut predictor = match Predictor::load(&bundle_path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: cannot load bundle {}: {e}", bundle_path.display());
            return 1;
        }
    };
    let input: Box<dyn BufRead> = match &requests {
        Some(p) => match std::fs::File::open(p) {
            Ok(f) => Box::new(std::io::BufReader::new(f)),
            Err(e) => {
                eprintln!("error: cannot open {}: {e}", p.display());
                return 1;
            }
        },
        None => Box::new(std::io::BufReader::new(std::io::stdin())),
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    // The dispatch core is shared with the advisord daemon; this loop
    // only owns the line framing, and it flushes per response line.
    let stats = match jsonl::serve_lines(&mut predictor, input, &mut out) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: request stream failed: {e}");
            return 1;
        }
    };
    eprintln!("[serve] {} ok, {} rejected", stats.served, stats.failed);
    if let Some(path) = metrics_out {
        // Bundle-identified config: the serve side has no PipelineConfig
        // of its own, so key the manifest on the bundle path.
        emit_metrics(&path, "advisor", 0, &bundle_path.display().to_string());
    }
    0
}

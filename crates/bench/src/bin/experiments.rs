//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [--scale quick|default|paper] [--metrics-out PATH] [TARGET...]
//! ```
//!
//! Targets: `table1 table2 table3 fig1 fig2 fig3 fig4 fig9 fig10 fig11
//! fig12 fig13 fig14 fig15 logo all` (default: `all`). `logo` is the
//! multi-vendor leave-one-GPU-out transfer study (not a paper figure).
//!
//! With `--metrics-out PATH` the run additionally writes an observability
//! report (run manifest + per-stage wall times + pipeline counters) to
//! `PATH` and a `chrome://tracing` trace next to it (`.trace.json`).

use stencilmart::advisor::Criterion;
use stencilmart::baselines::BaselinePolicy;
use stencilmart::experiments as exp;
use stencilmart_bench::Scale;
use stencilmart_obs as obs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Default;
    let mut metrics_out: Option<std::path::PathBuf> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_default();
                scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale {v:?}; use quick|default|paper");
                    std::process::exit(2);
                });
            }
            "--metrics-out" => {
                let v = it.next().unwrap_or_default();
                if v.is_empty() {
                    eprintln!("--metrics-out requires a path");
                    std::process::exit(2);
                }
                metrics_out = Some(std::path::PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--scale quick|default|paper] \
                     [--metrics-out PATH] [TARGET...]\n\
                     targets: table1 table2 table3 fig1 fig2 fig3 fig4 fig9 fig10 \
                     fig11 fig12 fig13 fig14 fig15 logo all"
                );
                return;
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }

    let cfg = scale.config();
    let config_repr = serde_json::to_string(&cfg).expect("serialize config");
    let seed = cfg.seed;
    {
        let _run = obs::span("experiments");
        run(cfg, &targets);
    }
    if let Some(path) = metrics_out {
        let manifest = obs::RunManifest::new("experiments", seed, &config_repr);
        obs::report::write_metrics(&path, &manifest).expect("write metrics report");
        let trace = obs::report::trace_path_for(&path);
        obs::report::write_chrome_trace(&trace).expect("write chrome trace");
        eprintln!("[metrics] wrote {} and {}", path.display(), trace.display());
    }
}

fn run(cfg: stencilmart::config::PipelineConfig, targets: &[String]) {
    let want = |t: &str| targets.iter().any(|x| x == t || x == "all");

    let profile_cfg = cfg.profile_config();

    if want("table1") {
        println!("{}", exp::table1());
    }
    if want("table2") {
        println!("{}", exp::table2());
    }
    if want("table3") || want("table4") {
        println!("{}", exp::table3_and_4());
    }
    if want("fig1") {
        eprintln!("[fig1] profiling canonical suite on V100...");
        println!("{}", exp::fig1(&profile_cfg).render());
    }
    if want("fig4") {
        eprintln!("[fig4] profiling canonical suite on all GPUs...");
        println!("{}", exp::fig4(&profile_cfg).render());
    }

    // The ablations build their own corpora but still use the scale's
    // configuration, so they ride along with the context-based targets.
    let ctx_targets = [
        "fig2",
        "fig3",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "logo",
        "ablations",
    ];
    let needs_ctx = ctx_targets.iter().any(|t| want(t));
    if !needs_ctx {
        return;
    }
    eprintln!(
        "[context] generating + profiling {} stencils/dim on {} GPUs...",
        cfg.stencils_per_dim,
        cfg.gpus.len()
    );
    let t0 = std::time::Instant::now();
    let ctx = exp::ExperimentContext::build(cfg);
    eprintln!("[context] built in {:.1}s", t0.elapsed().as_secs_f64());

    if want("fig2") {
        println!("{}", exp::fig2(&ctx).render());
    }
    if want("fig3") {
        println!("{}", exp::fig3(&ctx, 100).render());
    }
    if want("fig9") || want("fig10") || want("fig11") {
        eprintln!("[fig9-11] cross-validating classifiers...");
        let t = std::time::Instant::now();
        let suite = exp::classification_suite(&ctx);
        eprintln!("[fig9-11] trained in {:.1}s", t.elapsed().as_secs_f64());
        if want("fig9") {
            println!("{}", suite.render_fig9(&ctx));
        }
        if want("fig10") {
            println!(
                "{}",
                exp::speedup_over(&ctx, &suite, BaselinePolicy::ArtemisLike).render(10, &ctx)
            );
        }
        if want("fig11") {
            println!(
                "{}",
                exp::speedup_over(&ctx, &suite, BaselinePolicy::An5dLike).render(11, &ctx)
            );
        }
    }
    if want("fig12") {
        eprintln!("[fig12] cross-validating regressors...");
        let t = std::time::Instant::now();
        let suite = exp::regression_suite(&ctx);
        eprintln!("[fig12] trained in {:.1}s", t.elapsed().as_secs_f64());
        println!("{}", suite.render_fig12(&ctx));
    }
    if want("fig13") {
        eprintln!("[fig13] sweeping MLP designs...");
        let layers = [4usize, 7, 10];
        let widths = [16usize, 64, 256];
        println!("{}", exp::fig13(&ctx, &layers, &widths).render());
    }
    if want("fig14") {
        eprintln!("[fig14] evaluating rental advisor (pure performance)...");
        let res = exp::fig14_15(&ctx, Criterion::PurePerformance);
        println!("{}", exp::render_advisor(&res, 14));
    }
    if want("fig15") {
        eprintln!("[fig15] evaluating rental advisor (cost efficiency)...");
        let res = exp::fig14_15(&ctx, Criterion::CostEfficiency);
        println!("{}", exp::render_advisor(&res, 15));
    }
    if want("logo") {
        eprintln!("[logo] leave-one-GPU-out transfer across the matrix...");
        let t = std::time::Instant::now();
        let suite = exp::logo_suite(&ctx);
        eprintln!("[logo] trained in {:.1}s", t.elapsed().as_secs_f64());
        println!("{}", suite.render());
    }
    if want("ablations") {
        use stencilmart::ablations;
        use stencilmart_gpusim::GpuId;
        use stencilmart_stencil::pattern::Dim;
        eprintln!("[ablations] representation...");
        println!(
            "{}",
            ablations::ablation_repr(&ctx.cfg, Dim::D2, GpuId::V100).render()
        );
        eprintln!("[ablations] OC merging...");
        println!(
            "{}",
            ablations::ablation_merge(&ctx.cfg, Dim::D2, GpuId::V100).render()
        );
        eprintln!("[ablations] noise...");
        println!("{}", ablations::ablation_noise(&ctx.cfg, Dim::D2).render());
        eprintln!("[ablations] tuning budget...");
        println!(
            "{}",
            ablations::ablation_budget(&ctx.cfg, Dim::D3, GpuId::V100).render()
        );
    }
}

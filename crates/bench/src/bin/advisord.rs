//! `advisord` — the always-on advisor daemon.
//!
//! ```text
//! advisord --bundle BUNDLE [--addr 127.0.0.1:0] [--max-conns N]
//!          [--max-batch N] [--metrics-out PATH] [--port-file PATH]
//! ```
//!
//! Speaks the versioned binary wire protocol (`stencilmart::wire`,
//! protocol version 1) over TCP. Concurrent in-flight requests are
//! micro-batched into the predictor's batched entry points by a single
//! batcher thread. The model bundle hot-swaps without downtime on
//! either a `SIGHUP` or a `Reload` control frame: the new bundle goes
//! through the full load-time validation, and a failed load keeps the
//! old model serving (counted in `bundle_swap_failures`).
//!
//! The daemon prints `advisord listening on ADDR` once ready (and
//! writes the address to `--port-file` if given), serves until a
//! `Shutdown` control frame arrives, then writes the observability
//! report to `--metrics-out`.

use std::io::Write;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;

use stencilmart::api::Predictor;
use stencilmart::serve::engine::{Engine, EngineOptions};
use stencilmart::serve::server::{serve, ServerOptions};
use stencilmart_obs as obs;

const USAGE: &str = "usage:\n  \
    advisord --bundle BUNDLE [--addr 127.0.0.1:0] [--max-conns N]\n           \
    [--max-batch N] [--metrics-out PATH] [--port-file PATH]";

/// SIGHUP-triggered hot-swap without a libc dependency: a C-ABI
/// handler sets a flag that a monitor thread polls.
#[cfg(unix)]
mod sighup {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static PENDING: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_sighup(_sig: i32) {
        PENDING.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGHUP: i32 = 1;

    pub fn install() {
        unsafe {
            signal(SIGHUP, on_sighup);
        }
    }

    pub fn take() -> bool {
        PENDING.swap(false, Ordering::SeqCst)
    }
}

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut bundle: Option<PathBuf> = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut max_conns = 8usize;
    let mut max_batch = 256usize;
    let mut metrics_out: Option<PathBuf> = None;
    let mut port_file: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--bundle" => bundle = Some(PathBuf::from(val("--bundle"))),
            "--addr" => addr = val("--addr"),
            "--max-conns" => {
                max_conns = match val("--max-conns").parse() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("--max-conns needs an integer");
                        return 2;
                    }
                };
            }
            "--max-batch" => {
                max_batch = match val("--max-batch").parse() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("--max-batch needs an integer");
                        return 2;
                    }
                };
            }
            "--metrics-out" => metrics_out = Some(PathBuf::from(val("--metrics-out"))),
            "--port-file" => port_file = Some(PathBuf::from(val("--port-file"))),
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return 0;
            }
            other => {
                eprintln!("unknown flag {other:?}\n{USAGE}");
                return 2;
            }
        }
    }
    let Some(bundle_path) = bundle else {
        eprintln!("advisord requires --bundle\n{USAGE}");
        return 2;
    };
    obs::set_enabled(true);
    let predictor = match Predictor::load(&bundle_path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: cannot load bundle {}: {e}", bundle_path.display());
            return 1;
        }
    };
    let engine = Arc::new(Engine::new(
        predictor,
        EngineOptions {
            max_batch,
            bundle_path: Some(bundle_path.clone()),
        },
    ));
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            return 1;
        }
    };
    let local = listener.local_addr().expect("bound socket has an address");
    if let Some(pf) = &port_file {
        if let Err(e) = std::fs::write(pf, local.to_string()) {
            eprintln!("error: cannot write port file {}: {e}", pf.display());
            return 1;
        }
    }
    println!("advisord listening on {local}");
    let _ = std::io::stdout().flush();

    #[cfg(unix)]
    let sighup_monitor = {
        sighup::install();
        let engine = Arc::clone(&engine);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(std::sync::atomic::Ordering::SeqCst) {
                if sighup::take() {
                    match engine.reload() {
                        Ok(v) => eprintln!("[advisord] SIGHUP reload -> generation {v}"),
                        Err(e) => eprintln!("[advisord] SIGHUP reload failed: {e}"),
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
        });
        (stop, handle)
    };

    let result = serve(
        listener,
        Arc::clone(&engine),
        ServerOptions {
            max_conns,
            read_timeout_ms: 50,
        },
    );

    #[cfg(unix)]
    {
        let (stop, handle) = sighup_monitor;
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        let _ = handle.join();
    }
    engine.stop();
    if let Err(e) = result {
        eprintln!("error: accept loop failed: {e}");
        return 1;
    }
    eprintln!("[advisord] shutdown complete");
    if let Some(path) = metrics_out {
        let manifest = obs::RunManifest::new("advisord", 0, &bundle_path.display().to_string());
        if let Err(e) = obs::report::write_metrics(&path, &manifest) {
            eprintln!("error: cannot write metrics {}: {e}", path.display());
            return 1;
        }
        let trace = obs::report::trace_path_for(&path);
        let _ = obs::report::write_chrome_trace(&trace);
        eprintln!("[metrics] wrote {}", path.display());
    }
    0
}

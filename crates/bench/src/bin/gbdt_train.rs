//! Headless GBDT training-throughput benchmark.
//!
//! ```text
//! gbdt_train [--quick] [--workers N] [OUTPUT.json]
//! ```
//!
//! Times gradient-boosted training — the dominant wall-clock cost of
//! `experiments` now that profiling is fast — and writes
//! `BENCH_gbdt.json` (default) with per-entry throughput figures:
//!
//! * `gbdt_regressor_fit_baseline` / `gbdt_regressor_fit_engine` — the
//!   legacy depth-first single-threaded loop (`gbdt::serial_ref`) vs the
//!   level-wise parallel engine on the same regression dataset,
//! * `gbdt_classifier_fit_baseline` / `gbdt_classifier_fit_engine` —
//!   the legacy round-major softmax loop vs the parallel one-vs-rest
//!   engine on the same classification dataset.
//!
//! Throughput is trees fitted per second (tree counts are equal between
//! the baseline and engine variants of each task, so the ratio is the
//! training speedup). Entries carry a `throughput` field which the CI
//! `bench_gate` compares against the committed baseline exactly like
//! `BENCH_gpusim.json`. Before timing, the bench asserts the engine fits
//! bit-identical models at 1 worker and at `--workers` workers.
//! `--workers` pins the pool (default 4, matching the perf-gate
//! runners); `--quick` keeps the same datasets with fewer timing
//! repetitions.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Value;
use std::time::Instant;
use stencilmart_ml::data::FeatureMatrix;
use stencilmart_ml::gbdt::serial_ref::{SerialGbdtClassifier, SerialGbdtRegressor};
use stencilmart_ml::gbdt::tree::TreeConfig;
use stencilmart_ml::gbdt::{GbdtClassifier, GbdtConfig, GbdtRegressor};
use stencilmart_obs::{self as obs, counters};

/// Timing repetition budget (datasets are identical in both modes so CI
/// compares like for like against the committed baseline).
#[derive(Clone, Copy)]
struct Budget {
    samples: usize,
}

impl Budget {
    const FULL: Budget = Budget { samples: 4 };
    const QUICK: Budget = Budget { samples: 3 };
}

fn entry(name: &str, shape: &str, unit: &str, throughput: f64, elapsed_s: f64) -> Value {
    Value::Object(vec![
        ("name".into(), Value::Str(name.into())),
        ("shape".into(), Value::Str(shape.into())),
        ("unit".into(), Value::Str(unit.into())),
        ("throughput".into(), Value::Float(throughput)),
        ("seconds_per_run".into(), Value::Float(elapsed_s)),
    ])
}

fn regression_dataset(n: usize, cols: usize) -> (FeatureMatrix, Vec<f32>) {
    let mut rng = ChaCha8Rng::seed_from_u64(0x6BD7);
    let mut data = Vec::with_capacity(n * cols);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f32> = (0..cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let target = row
            .iter()
            .enumerate()
            .map(|(j, v)| ((j % 7) as f32 - 3.0) * v)
            .sum::<f32>()
            + row[0] * row[1]
            + rng.gen_range(-0.2f32..0.2);
        data.extend_from_slice(&row);
        y.push(target);
    }
    (FeatureMatrix::new(n, cols, data), y)
}

fn classification_dataset(n: usize, cols: usize, classes: usize) -> (FeatureMatrix, Vec<usize>) {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC1A5);
    let mut data = Vec::with_capacity(n * cols);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f32> = (0..cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        // Separable-ish regions with label noise: trees get real structure
        // to split on, like the OC-selection datasets.
        let region = (row[0] > 0.0) as usize * 2 + (row[1] > 0.0) as usize;
        let label = if rng.gen_range(0.0f32..1.0) < 0.15 {
            rng.gen_range(0..classes)
        } else {
            region.min(classes - 1)
        };
        data.extend_from_slice(&row);
        labels.push(label);
    }
    (FeatureMatrix::new(n, cols, data), labels)
}

/// Minimum wall-clock over `samples` runs of `f`.
fn best_secs<T>(samples: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Assert the engine fits a bit-identical model serial vs parallel
/// before any timing — the bench doubles as an end-to-end determinism
/// check on realistic sizes.
#[allow(clippy::too_many_arguments)]
fn check_determinism(
    x: &FeatureMatrix,
    y: &[f32],
    cx: &FeatureMatrix,
    labels: &[usize],
    classes: usize,
    reg_cfg: &GbdtConfig,
    cls_cfg: &GbdtConfig,
    workers: usize,
) {
    let fit_both = || {
        (
            serde_json::to_string(&GbdtRegressor::fit(x, y, reg_cfg)).expect("serialize"),
            serde_json::to_string(&GbdtClassifier::fit(cx, labels, classes, cls_cfg))
                .expect("serialize"),
        )
    };
    std::env::set_var("STENCILMART_THREADS", "1");
    let serial = fit_both();
    std::env::set_var("STENCILMART_THREADS", workers.to_string());
    let parallel = fit_both();
    assert_eq!(
        serial, parallel,
        "engine models differ between 1 and {workers} workers"
    );
}

fn main() {
    let mut out_path = "BENCH_gbdt.json".to_string();
    let mut budget = Budget::FULL;
    let mut quick = false;
    let mut workers = 4usize;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {
                quick = true;
                budget = Budget::QUICK;
            }
            "--workers" => {
                let v = it.next().unwrap_or_default();
                workers = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --workers value {v:?}");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("usage: gbdt_train [--quick] [--workers N] [OUTPUT.json]");
                return;
            }
            other => out_path = other.to_string(),
        }
    }
    obs::set_enabled(true);
    obs::reset();

    // Regression task: cloud-GPU rental case-study scale, sized so the
    // binned matrix (rows × cols bytes) exceeds L2 — the regime where
    // the legacy per-feature strided scans pay a cache line per access.
    let (rx, ry) = regression_dataset(40_000, 64);
    let reg_cfg = GbdtConfig {
        rounds: 24,
        eta: 0.1,
        subsample: 0.8,
        tree: TreeConfig {
            max_depth: 7,
            min_child_weight: 2.0,
            ..TreeConfig::default()
        },
        bins: 32,
        seed: 0x6BD7,
    };
    // Classification task: OC-selection scale (6 merged OC classes).
    let classes = 6usize;
    let (cx, clabels) = classification_dataset(10_000, 48, classes);
    let cls_cfg = GbdtConfig {
        rounds: 10,
        eta: 0.2,
        subsample: 0.8,
        tree: TreeConfig {
            max_depth: 6,
            ..TreeConfig::default()
        },
        bins: 32,
        seed: 0xC1A5,
    };

    eprintln!("[gbdt_train] determinism check (1 vs {workers} workers)...");
    check_determinism(
        &rx, &ry, &cx, &clabels, classes, &reg_cfg, &cls_cfg, workers,
    );

    // Pin the pool so baseline and CI runs compare like for like.
    std::env::set_var("STENCILMART_THREADS", workers.to_string());
    let mut entries = Vec::new();

    eprintln!("[gbdt_train] regressor: baseline vs engine...");
    let reg_trees = reg_cfg.rounds as f64;
    let reg_shape = "40000 x 64, 24 rounds, depth 7, 32 bins";
    let base_secs = best_secs(budget.samples, || {
        SerialGbdtRegressor::fit(&rx, &ry, &reg_cfg)
    });
    entries.push(entry(
        "gbdt_regressor_fit_baseline",
        reg_shape,
        "trees/s",
        reg_trees / base_secs,
        base_secs,
    ));
    let engine_secs = best_secs(budget.samples, || GbdtRegressor::fit(&rx, &ry, &reg_cfg));
    entries.push(entry(
        "gbdt_regressor_fit_engine",
        reg_shape,
        "trees/s",
        reg_trees / engine_secs,
        engine_secs,
    ));
    let reg_speedup = base_secs / engine_secs;

    eprintln!("[gbdt_train] classifier: baseline vs engine...");
    let cls_trees = (cls_cfg.rounds * classes) as f64;
    let cls_shape = "10000 x 48, 6 classes, 10 rounds, depth 6, 32 bins";
    let base_secs = best_secs(budget.samples, || {
        SerialGbdtClassifier::fit(&cx, &clabels, classes, &cls_cfg)
    });
    entries.push(entry(
        "gbdt_classifier_fit_baseline",
        cls_shape,
        "trees/s",
        cls_trees / base_secs,
        base_secs,
    ));
    counters::HIST_BUILDS.reset();
    counters::HIST_SUBTRACTIONS.reset();
    let engine_secs = best_secs(budget.samples, || {
        GbdtClassifier::fit(&cx, &clabels, classes, &cls_cfg)
    });
    entries.push(entry(
        "gbdt_classifier_fit_engine",
        cls_shape,
        "trees/s",
        cls_trees / engine_secs,
        engine_secs,
    ));
    let cls_speedup = base_secs / engine_secs;
    let (built, derived) = (
        counters::HIST_BUILDS.get(),
        counters::HIST_SUBTRACTIONS.get(),
    );

    let doc = Value::Object(vec![
        (
            "description".into(),
            Value::Str(
                "GBDT training throughput: legacy depth-first loop vs level-wise parallel engine"
                    .into(),
            ),
        ),
        (
            "isa".into(),
            Value::Str(obs::runtime::simd_isa().name().into()),
        ),
        ("workers".into(), Value::Float(workers as f64)),
        ("quick".into(), Value::Bool(quick)),
        ("regressor_speedup".into(), Value::Float(reg_speedup)),
        ("classifier_speedup".into(), Value::Float(cls_speedup)),
        ("hist_builds".into(), Value::Float(built as f64)),
        ("hist_subtractions".into(), Value::Float(derived as f64)),
        ("entries".into(), Value::Array(entries)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&out_path, format!("{json}\n")).expect("write output");
    println!("wrote {out_path}");
    println!("  regressor speedup : {reg_speedup:.2}x");
    println!("  classifier speedup: {cls_speedup:.2}x");
    if let Value::Object(fields) = &doc {
        if let Some((_, Value::Array(items))) = fields.iter().find(|(k, _)| k == "entries") {
            for e in items {
                let get = |key: &str| e.field(key).ok().cloned().unwrap_or(Value::Null);
                println!(
                    "  {:<28} {:>12} {}",
                    match get("name") {
                        Value::Str(s) => s,
                        _ => String::new(),
                    },
                    match get("throughput") {
                        Value::Float(f) => format!("{f:.1}"),
                        _ => String::new(),
                    },
                    match get("unit") {
                        Value::Str(s) => s,
                        _ => String::new(),
                    },
                );
            }
        }
    }
}

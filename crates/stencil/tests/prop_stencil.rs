//! Property-based tests for stencil representations and generation.

use proptest::prelude::*;
use stencilmart_stencil::features::{extract, FeatureConfig};
use stencilmart_stencil::generator::{GeneratorConfig, StencilGenerator};
use stencilmart_stencil::pattern::{shell_size, Dim, Offset, StencilPattern};
use stencilmart_stencil::tensor::BinaryTensor;

fn arb_dim() -> impl Strategy<Value = Dim> {
    prop_oneof![Just(Dim::D2), Just(Dim::D3)]
}

fn arb_offset(dim: Dim, max: i32) -> impl Strategy<Value = Offset> {
    let rank = dim.rank();
    (-max..=max, -max..=max, -max..=max).prop_map(move |(x, y, z)| {
        let mut c = [x, y, z];
        for v in c.iter_mut().skip(rank) {
            *v = 0;
        }
        Offset { c }
    })
}

fn arb_pattern() -> impl Strategy<Value = StencilPattern> {
    arb_dim().prop_flat_map(|dim| {
        prop::collection::vec(arb_offset(dim, 4), 1..30)
            .prop_map(move |offs| StencilPattern::new(dim, offs).unwrap())
    })
}

proptest! {
    #[test]
    fn tensor_roundtrip_is_identity(p in arb_pattern()) {
        let t = BinaryTensor::canvas(&p);
        prop_assert_eq!(t.to_pattern(), p);
    }

    #[test]
    fn tensor_nnz_equals_pattern_nnz(p in arb_pattern()) {
        prop_assert_eq!(BinaryTensor::canvas(&p).nnz(), p.nnz());
    }

    #[test]
    fn shell_nnz_sums_to_total(p in arb_pattern()) {
        let total: usize = (0..=p.order()).map(|n| p.shell_nnz(n)).sum();
        prop_assert_eq!(total, p.nnz());
    }

    #[test]
    fn shell_nnz_bounded_by_shell_size(p in arb_pattern()) {
        for n in 1..=p.order() {
            prop_assert!(p.shell_nnz(n) <= shell_size(p.dim().rank(), n));
        }
    }

    #[test]
    fn features_are_finite_and_bounded(p in arb_pattern()) {
        for cfg in [FeatureConfig::table2(), FeatureConfig::extended()] {
            let f = extract(&p, &cfg);
            prop_assert_eq!(f.values.len(), cfg.len());
            for &v in &f.values {
                prop_assert!(v.is_finite());
                prop_assert!(v >= 0.0);
            }
            // sparsity and ratios are in [0, 1]
            prop_assert!(f.values[2] <= 1.0);
            for i in 0..4 {
                prop_assert!(f.values[7 + i] <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn generator_respects_order_and_shells(
        seed in 0u64..1000,
        order in 1u8..=4,
        dim in arb_dim(),
        keep in 0.1f64..0.9,
        symmetric in any::<bool>(),
    ) {
        let mut g = StencilGenerator::new(seed);
        let cfg = GeneratorConfig { dim, order, keep_prob: keep, symmetric };
        let p = g.generate(&cfg);
        prop_assert_eq!(p.order(), order);
        for n in 1..=order {
            prop_assert!(p.shell_nnz(n) > 0);
        }
        if symmetric {
            prop_assert!(p.is_symmetric());
        }
    }

    #[test]
    fn pattern_canonical_form_is_stable(p in arb_pattern()) {
        // Rebuilding from the same points yields an identical pattern.
        let q = StencilPattern::new(p.dim(), p.points().iter().copied()).unwrap();
        prop_assert_eq!(p, q);
    }
}

//! The named benchmark stencils used throughout the paper's evaluation:
//! star / box / cross shapes, orders 1–4, in 2-D and 3-D, with the paper's
//! grid sizes (8192² and 512³).

use crate::pattern::{Dim, StencilPattern};
use crate::shapes::{self, Shape};
use serde::{Deserialize, Serialize};

/// A canonical benchmark stencil: a named pattern plus its grid size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CanonicalStencil {
    /// Benchmark identifier, e.g. `box3d2r`.
    pub name: String,
    /// The access pattern.
    pub pattern: StencilPattern,
    /// Grid points per axis (8192 for 2-D, 512 for 3-D).
    pub grid: usize,
}

/// Paper grid size per dimensionality (§III / §V-A2).
pub fn grid_for(dim: Dim) -> usize {
    match dim {
        Dim::D1 => 1 << 26,
        Dim::D2 => 8192,
        Dim::D3 => 512,
    }
}

/// Build one canonical stencil by family, dimensionality, and order.
pub fn canonical(shape: Shape, dim: Dim, order: u8) -> CanonicalStencil {
    CanonicalStencil {
        name: format!("{}{}{}r", shape.name(), dim, order),
        pattern: shapes::build(shape, dim, order),
        grid: grid_for(dim),
    }
}

/// The full canonical suite: star/box/cross × {2-D, 3-D} × orders 1–4
/// (24 stencils), in the ordering used by the paper's figures (2-D before
/// 3-D; within a dimensionality, star, then box, then cross; ascending
/// order).
pub fn suite() -> Vec<CanonicalStencil> {
    cached_suite().to_vec()
}

/// The suite, built once per process. Serving frontends resolve stencil
/// names per request, so lookups must not rebuild 24 patterns each time.
fn cached_suite() -> &'static [CanonicalStencil] {
    static SUITE: std::sync::OnceLock<Vec<CanonicalStencil>> = std::sync::OnceLock::new();
    SUITE.get_or_init(|| {
        let mut out = Vec::with_capacity(24);
        for dim in [Dim::D2, Dim::D3] {
            for shape in [Shape::Star, Shape::Box, Shape::Cross] {
                for order in 1..=4u8 {
                    out.push(canonical(shape, dim, order));
                }
            }
        }
        out
    })
}

/// A stable memoization key for a pattern: dimensionality plus the
/// canonical (sorted, deduplicated) offset list. Two patterns compare
/// equal iff their keys match, so per-pattern caches keyed by this
/// string never alias distinct stencils.
pub fn canonical_key(p: &StencilPattern) -> String {
    use std::fmt::Write;
    let mut key = String::with_capacity(8 + 9 * p.nnz());
    let _ = write!(key, "{}:", p.dim());
    for o in p.points() {
        let _ = write!(key, "{},{},{};", o.c[0], o.c[1], o.c[2]);
    }
    key
}

/// Look up a canonical stencil by its benchmark name (e.g. `star2d1r`).
pub fn by_name(name: &str) -> Option<CanonicalStencil> {
    cached_suite().iter().find(|c| c.name == name).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_24_unique_names() {
        let s = suite();
        assert_eq!(s.len(), 24);
        let names: std::collections::HashSet<_> = s.iter().map(|c| &c.name).collect();
        assert_eq!(names.len(), 24);
    }

    #[test]
    fn names_follow_paper_convention() {
        assert!(by_name("star2d1r").is_some());
        assert!(by_name("box3d4r").is_some());
        assert!(by_name("cross2d1r").is_some());
        assert!(by_name("hex2d1r").is_none());
    }

    #[test]
    fn grids_match_paper() {
        assert_eq!(by_name("star2d1r").unwrap().grid, 8192);
        assert_eq!(by_name("star3d1r").unwrap().grid, 512);
    }

    #[test]
    fn canonical_keys_separate_patterns() {
        let s = suite();
        let keys: std::collections::HashSet<_> =
            s.iter().map(|c| canonical_key(&c.pattern)).collect();
        // 23, not 24: cross2d1r and box2d1r are the same point set at
        // radius 1 (axes + diagonals fill the 3×3 box), so they — and
        // only they — correctly share a key.
        assert_eq!(keys.len(), 23, "distinct patterns get distinct keys");
        assert_eq!(
            canonical_key(&by_name("cross2d1r").unwrap().pattern),
            canonical_key(&by_name("box2d1r").unwrap().pattern)
        );
        // Equal patterns (built independently) share a key.
        let a = shapes::star(Dim::D2, 2);
        let b = shapes::star(Dim::D2, 2);
        assert_eq!(canonical_key(&a), canonical_key(&b));
    }

    #[test]
    fn patterns_match_shape_builders() {
        let c = by_name("box2d3r").unwrap();
        assert_eq!(c.pattern, shapes::box_(Dim::D2, 3));
        assert_eq!(c.pattern.order(), 3);
    }
}

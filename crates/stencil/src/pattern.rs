//! Core stencil pattern types: dimensionality, neighbor offsets, and the
//! access-pattern set itself.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Grid dimensionality of a stencil. The paper evaluates 2-D and 3-D
/// stencils; 1-D is supported for completeness (degenerate star/box).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dim {
    /// One-dimensional grid.
    D1,
    /// Two-dimensional grid (paper default: 8192²).
    D2,
    /// Three-dimensional grid (paper default: 512³).
    D3,
}

impl Dim {
    /// Number of spatial axes.
    #[inline]
    pub fn rank(self) -> usize {
        match self {
            Dim::D1 => 1,
            Dim::D2 => 2,
            Dim::D3 => 3,
        }
    }

    /// Construct from a rank in `1..=3`.
    pub fn from_rank(rank: usize) -> Option<Dim> {
        match rank {
            1 => Some(Dim::D1),
            2 => Some(Dim::D2),
            3 => Some(Dim::D3),
            _ => None,
        }
    }

    /// All supported dimensionalities.
    pub const ALL: [Dim; 3] = [Dim::D1, Dim::D2, Dim::D3];
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}d", self.rank())
    }
}

/// A neighbor offset relative to the central point.
///
/// Offsets are stored as three components; axes beyond the stencil's rank
/// must be zero. Axis 0 is the innermost (unit-stride) dimension, matching
/// the memory-coalescing analysis in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Offset {
    /// Per-axis displacement; unused axes are zero.
    pub c: [i32; 3],
}

impl Offset {
    /// Create a 1-D offset.
    #[inline]
    pub fn d1(x: i32) -> Offset {
        Offset { c: [x, 0, 0] }
    }

    /// Create a 2-D offset.
    #[inline]
    pub fn d2(x: i32, y: i32) -> Offset {
        Offset { c: [x, y, 0] }
    }

    /// Create a 3-D offset.
    #[inline]
    pub fn d3(x: i32, y: i32, z: i32) -> Offset {
        Offset { c: [x, y, z] }
    }

    /// The central point (zero offset).
    #[inline]
    pub fn center() -> Offset {
        Offset { c: [0, 0, 0] }
    }

    /// Whether this is the central point.
    #[inline]
    pub fn is_center(&self) -> bool {
        self.c == [0, 0, 0]
    }

    /// Chebyshev (L∞) norm. The *order* of a neighbor is its Chebyshev
    /// distance from the center: order-n neighbors form the n-th shell of
    /// the `(2n+1)^d` box.
    #[inline]
    pub fn order(&self) -> u8 {
        self.c.iter().map(|v| v.unsigned_abs()).max().unwrap_or(0) as u8
    }

    /// Euclidean distance from the center.
    #[inline]
    pub fn euclid(&self) -> f64 {
        (self.c.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>()).sqrt()
    }

    /// Manhattan (L1) norm.
    #[inline]
    pub fn manhattan(&self) -> u32 {
        self.c.iter().map(|v| v.unsigned_abs()).sum()
    }

    /// Whether the offset lies on a coordinate axis (at most one non-zero
    /// component). The center counts as on-axis.
    #[inline]
    pub fn on_axis(&self) -> bool {
        self.c.iter().filter(|&&v| v != 0).count() <= 1
    }

    /// Whether the offset lies on a main diagonal: all non-zero components
    /// share the same absolute value and every axis of the given rank is
    /// non-zero.
    pub fn on_diagonal(&self, rank: usize) -> bool {
        let mag = self.order() as i32;
        if mag == 0 {
            return false;
        }
        self.c[..rank].iter().all(|&v| v.abs() == mag)
    }

    /// The point mirrored through the center.
    #[inline]
    pub fn negated(&self) -> Offset {
        Offset {
            c: [-self.c[0], -self.c[1], -self.c[2]],
        }
    }

    /// All face-adjacent and corner-adjacent neighbors of this point within
    /// the given rank (the `3^rank - 1` surrounding cells).
    pub fn adjacent(&self, rank: usize) -> Vec<Offset> {
        let mut out = Vec::with_capacity(3usize.pow(rank as u32) - 1);
        let steps: &[i32] = &[-1, 0, 1];
        let mut push = |d: [i32; 3]| {
            if d != [0, 0, 0] {
                out.push(Offset {
                    c: [self.c[0] + d[0], self.c[1] + d[1], self.c[2] + d[2]],
                });
            }
        };
        match rank {
            1 => {
                for &dx in steps {
                    push([dx, 0, 0]);
                }
            }
            2 => {
                for &dx in steps {
                    for &dy in steps {
                        push([dx, dy, 0]);
                    }
                }
            }
            3 => {
                for &dx in steps {
                    for &dy in steps {
                        for &dz in steps {
                            push([dx, dy, dz]);
                        }
                    }
                }
            }
            _ => panic!("unsupported rank {rank}"),
        }
        out
    }
}

impl fmt::Display for Offset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.c[0], self.c[1], self.c[2])
    }
}

/// Number of lattice points at exactly Chebyshev distance `n` in `rank`
/// dimensions (the size of the order-`n` shell).
pub fn shell_size(rank: usize, n: u8) -> usize {
    if n == 0 {
        return 1;
    }
    let outer = (2 * n as usize + 1).pow(rank as u32);
    let inner = (2 * n as usize - 1).pow(rank as u32);
    outer - inner
}

/// A stencil access pattern: the set of grid offsets (including the central
/// point) read when updating one output point.
///
/// Invariants maintained by the constructors:
/// * the central point is always present,
/// * offsets are unique and sorted (canonical form),
/// * every offset's non-rank axes are zero,
/// * `order` equals the maximum Chebyshev norm over all offsets.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StencilPattern {
    dim: Dim,
    order: u8,
    points: Vec<Offset>,
}

/// Errors raised when constructing a [`StencilPattern`] from raw offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// An offset used an axis beyond the pattern's rank.
    RankViolation(Offset),
    /// The point set was empty (even the center missing and nothing to add).
    Empty,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::RankViolation(o) => {
                write!(f, "offset {o} uses an axis beyond the pattern rank")
            }
            PatternError::Empty => write!(f, "pattern has no access points"),
        }
    }
}

impl std::error::Error for PatternError {}

impl StencilPattern {
    /// Build a pattern from neighbor offsets. The central point is inserted
    /// if absent, duplicates are removed, and the point list is sorted.
    pub fn new(dim: Dim, offsets: impl IntoIterator<Item = Offset>) -> Result<Self, PatternError> {
        let rank = dim.rank();
        let mut points: Vec<Offset> = Vec::new();
        for o in offsets {
            if o.c[rank..].iter().any(|&v| v != 0) {
                return Err(PatternError::RankViolation(o));
            }
            points.push(o);
        }
        points.push(Offset::center());
        points.sort_unstable();
        points.dedup();
        let order = points.iter().map(|p| p.order()).max().unwrap_or(0);
        Ok(StencilPattern { dim, order, points })
    }

    /// Grid dimensionality.
    #[inline]
    pub fn dim(&self) -> Dim {
        self.dim
    }

    /// Stencil order: the maximum Chebyshev extent of the accessed
    /// neighbors.
    #[inline]
    pub fn order(&self) -> u8 {
        self.order
    }

    /// All accessed offsets (central point included), in canonical order.
    #[inline]
    pub fn points(&self) -> &[Offset] {
        &self.points
    }

    /// Number of accessed points (central point included). This is the
    /// `nnz` of the binary tensor representation.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.points.len()
    }

    /// Offsets at exactly Chebyshev distance `n`.
    pub fn shell(&self, n: u8) -> impl Iterator<Item = &Offset> {
        self.points.iter().filter(move |p| p.order() == n)
    }

    /// Number of accessed points at exactly Chebyshev distance `n`.
    pub fn shell_nnz(&self, n: u8) -> usize {
        self.shell(n).count()
    }

    /// Whether the pattern is point-symmetric about the center (true for
    /// all classic star/box/cross stencils).
    pub fn is_symmetric(&self) -> bool {
        self.points
            .iter()
            .all(|p| self.points.binary_search(&p.negated()).is_ok())
    }

    /// Whether a specific offset is accessed.
    pub fn contains(&self, o: &Offset) -> bool {
        self.points.binary_search(o).is_ok()
    }

    /// Extent of accesses along a given axis: `(min, max)` displacement.
    pub fn axis_extent(&self, axis: usize) -> (i32, i32) {
        let mut lo = 0;
        let mut hi = 0;
        for p in &self.points {
            lo = lo.min(p.c[axis]);
            hi = hi.max(p.c[axis]);
        }
        (lo, hi)
    }

    /// Floating-point operations to update one output point, assuming one
    /// fused multiply-add (2 FLOPs) per accessed input.
    #[inline]
    pub fn flops_per_point(&self) -> usize {
        2 * self.nnz()
    }

    /// Number of *distinct rows* (unit-stride lines) touched: offsets that
    /// differ only in axis 0 share a row. This drives the coalesced-load
    /// estimate in the simulator.
    pub fn distinct_rows(&self) -> usize {
        let mut rows: Vec<(i32, i32)> = self.points.iter().map(|p| (p.c[1], p.c[2])).collect();
        rows.sort_unstable();
        rows.dedup();
        rows.len()
    }

    /// A human-readable signature such as `2d-r3-nnz13`.
    pub fn signature(&self) -> String {
        format!("{}-r{}-nnz{}", self.dim, self.order, self.nnz())
    }
}

impl fmt::Display for StencilPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.signature())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_rank_roundtrip() {
        for d in Dim::ALL {
            assert_eq!(Dim::from_rank(d.rank()), Some(d));
        }
        assert_eq!(Dim::from_rank(0), None);
        assert_eq!(Dim::from_rank(4), None);
    }

    #[test]
    fn offset_order_is_chebyshev() {
        assert_eq!(Offset::d2(3, -1).order(), 3);
        assert_eq!(Offset::d3(1, -4, 2).order(), 4);
        assert_eq!(Offset::center().order(), 0);
    }

    #[test]
    fn offset_euclid_and_manhattan() {
        let o = Offset::d2(3, 4);
        assert!((o.euclid() - 5.0).abs() < 1e-12);
        assert_eq!(o.manhattan(), 7);
    }

    #[test]
    fn offset_axis_and_diagonal() {
        assert!(Offset::d2(0, 3).on_axis());
        assert!(!Offset::d2(1, 3).on_axis());
        assert!(Offset::d2(2, -2).on_diagonal(2));
        assert!(!Offset::d2(2, -1).on_diagonal(2));
        assert!(!Offset::center().on_diagonal(2));
        assert!(Offset::d3(1, 1, -1).on_diagonal(3));
    }

    #[test]
    fn adjacent_counts() {
        assert_eq!(Offset::center().adjacent(1).len(), 2);
        assert_eq!(Offset::center().adjacent(2).len(), 8);
        assert_eq!(Offset::center().adjacent(3).len(), 26);
    }

    #[test]
    fn shell_sizes() {
        assert_eq!(shell_size(2, 0), 1);
        assert_eq!(shell_size(2, 1), 8);
        assert_eq!(shell_size(2, 2), 16);
        assert_eq!(shell_size(3, 1), 26);
        assert_eq!(shell_size(3, 2), 98);
    }

    #[test]
    fn pattern_inserts_center_and_dedups() {
        let p = StencilPattern::new(
            Dim::D2,
            vec![Offset::d2(1, 0), Offset::d2(1, 0), Offset::d2(-1, 0)],
        )
        .unwrap();
        assert_eq!(p.nnz(), 3);
        assert!(p.contains(&Offset::center()));
        assert_eq!(p.order(), 1);
    }

    #[test]
    fn pattern_rejects_rank_violation() {
        let err = StencilPattern::new(Dim::D2, vec![Offset::d3(0, 0, 1)]).unwrap_err();
        assert!(matches!(err, PatternError::RankViolation(_)));
    }

    #[test]
    fn pattern_axis_extent() {
        let p = StencilPattern::new(Dim::D2, vec![Offset::d2(-2, 0), Offset::d2(3, 1)]).unwrap();
        assert_eq!(p.axis_extent(0), (-2, 3));
        assert_eq!(p.axis_extent(1), (0, 1));
    }

    #[test]
    fn pattern_symmetry() {
        let sym = StencilPattern::new(Dim::D2, vec![Offset::d2(1, 0), Offset::d2(-1, 0)]).unwrap();
        assert!(sym.is_symmetric());
        let asym = StencilPattern::new(Dim::D2, vec![Offset::d2(1, 0)]).unwrap();
        assert!(!asym.is_symmetric());
    }

    #[test]
    fn distinct_rows_counts_lines() {
        // 2-D 5-point star: rows y=-1, y=0, y=+1.
        let p = StencilPattern::new(
            Dim::D2,
            vec![
                Offset::d2(1, 0),
                Offset::d2(-1, 0),
                Offset::d2(0, 1),
                Offset::d2(0, -1),
            ],
        )
        .unwrap();
        assert_eq!(p.distinct_rows(), 3);
    }

    #[test]
    fn flops_counts_fma() {
        let p = StencilPattern::new(Dim::D1, vec![Offset::d1(1), Offset::d1(-1)]).unwrap();
        assert_eq!(p.flops_per_point(), 6);
    }
}

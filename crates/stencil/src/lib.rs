#![warn(missing_docs)]

//! Stencil patterns, representations, and random generation for StencilMART.
//!
//! This crate models the *input* side of the StencilMART pipeline (Sun et
//! al., IPDPS 2022):
//!
//! * [`pattern::StencilPattern`] — a stencil access pattern: the set of
//!   neighbor offsets read to update one grid point.
//! * [`shapes`] — the classic star / box / cross families the paper's
//!   motivation section evaluates.
//! * [`tensor::BinaryTensor`] — the paper's binary sparse-tensor
//!   representation (Fig. 6): offsets become non-zero entries of a
//!   `(2·order+1)^dim` tensor, optionally embedded in a fixed-size canvas so
//!   a CNN can consume stencils of any order.
//! * [`features`] — the candidate feature set of Table II (order, nnz,
//!   sparsity, per-shell non-zero counts and ratios).
//! * [`generator`] — Algorithm 1: a random stencil generator that only emits
//!   patterns obeying the neighbor-access structure of real stencils.
//! * [`canonical`] — the named benchmark stencils used in the paper's
//!   figures (`star2d1r` … `box3d4r`).
//! * [`codegen`] — pseudo-CUDA source emission for a pattern, used by the
//!   examples to show what the simulated kernels correspond to.

pub mod canonical;
pub mod codegen;
pub mod features;
pub mod generator;
pub mod pattern;
pub mod shapes;
pub mod tensor;

pub use features::{FeatureConfig, FeatureVector};
pub use generator::{GeneratorConfig, StencilGenerator};
pub use pattern::{Dim, Offset, StencilPattern};
pub use tensor::BinaryTensor;

/// The maximum stencil order supported by the fixed-size tensor canvas.
///
/// The paper sets the maximum order to 4, giving 9×9 (2-D) and 9×9×9 (3-D)
/// canvases.
pub const MAX_ORDER: u8 = 4;

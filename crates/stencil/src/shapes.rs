//! Constructors for the classic stencil shape families evaluated in the
//! paper's motivation section: **star**, **box**, and **cross**.
//!
//! * A *star* stencil of order `r` accesses the `2·d·r` points lying on the
//!   coordinate axes within distance `r` (plus the center) — e.g. the 2-D
//!   order-1 star is the familiar 5-point stencil.
//! * A *box* stencil of order `r` accesses the full `(2r+1)^d` cube.
//! * A *cross* stencil of order `r` accesses the axes **and** the main
//!   diagonals within distance `r` — the union of a star and an X. (The
//!   literature is not fully consistent on "cross"; this definition matches
//!   the density ordering star < cross < box observed in the paper's
//!   figures.)

use crate::pattern::{Dim, Offset, StencilPattern};

/// Shape family of a classic stencil.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// Axis-aligned arms only.
    Star,
    /// Full `(2r+1)^d` cube.
    Box,
    /// Axis arms plus main diagonals.
    Cross,
}

impl Shape {
    /// All shape families.
    pub const ALL: [Shape; 3] = [Shape::Star, Shape::Box, Shape::Cross];

    /// Lower-case name as used in benchmark identifiers (`star2d1r`).
    pub fn name(self) -> &'static str {
        match self {
            Shape::Star => "star",
            Shape::Box => "box",
            Shape::Cross => "cross",
        }
    }
}

/// Build a star stencil of the given order.
///
/// # Panics
/// Panics if `order == 0`.
pub fn star(dim: Dim, order: u8) -> StencilPattern {
    assert!(order >= 1, "stencil order must be >= 1");
    let rank = dim.rank();
    let mut pts = Vec::new();
    for axis in 0..rank {
        for k in 1..=order as i32 {
            for s in [-k, k] {
                let mut c = [0i32; 3];
                c[axis] = s;
                pts.push(Offset { c });
            }
        }
    }
    StencilPattern::new(dim, pts).expect("star offsets respect rank")
}

/// Build a box stencil of the given order (full cube).
///
/// # Panics
/// Panics if `order == 0`.
pub fn box_(dim: Dim, order: u8) -> StencilPattern {
    assert!(order >= 1, "stencil order must be >= 1");
    let rank = dim.rank();
    let r = order as i32;
    let mut pts = Vec::new();
    let range = -r..=r;
    match rank {
        1 => {
            for x in range {
                pts.push(Offset::d1(x));
            }
        }
        2 => {
            for x in range.clone() {
                for y in range.clone() {
                    pts.push(Offset::d2(x, y));
                }
            }
        }
        3 => {
            for x in range.clone() {
                for y in range.clone() {
                    for z in range.clone() {
                        pts.push(Offset::d3(x, y, z));
                    }
                }
            }
        }
        _ => unreachable!(),
    }
    StencilPattern::new(dim, pts).expect("box offsets respect rank")
}

/// Build a cross stencil of the given order (axes plus main diagonals).
///
/// # Panics
/// Panics if `order == 0`.
pub fn cross(dim: Dim, order: u8) -> StencilPattern {
    assert!(order >= 1, "stencil order must be >= 1");
    let rank = dim.rank();
    let mut pts: Vec<Offset> = star(dim, order).points().to_vec();
    // Add the 2^rank main diagonals at each magnitude.
    for k in 1..=order as i32 {
        let signs: &[i32] = &[-1, 1];
        match rank {
            1 => {} // diagonals coincide with the axis in 1-D
            2 => {
                for &sx in signs {
                    for &sy in signs {
                        pts.push(Offset::d2(sx * k, sy * k));
                    }
                }
            }
            3 => {
                for &sx in signs {
                    for &sy in signs {
                        for &sz in signs {
                            pts.push(Offset::d3(sx * k, sy * k, sz * k));
                        }
                    }
                }
            }
            _ => unreachable!(),
        }
    }
    StencilPattern::new(dim, pts).expect("cross offsets respect rank")
}

/// Build a shape by family.
pub fn build(shape: Shape, dim: Dim, order: u8) -> StencilPattern {
    match shape {
        Shape::Star => star(dim, order),
        Shape::Box => box_(dim, order),
        Shape::Cross => cross(dim, order),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_nnz() {
        // 2·d·r + 1
        assert_eq!(star(Dim::D2, 1).nnz(), 5);
        assert_eq!(star(Dim::D2, 4).nnz(), 17);
        assert_eq!(star(Dim::D3, 1).nnz(), 7);
        assert_eq!(star(Dim::D3, 4).nnz(), 25);
    }

    #[test]
    fn box_nnz() {
        assert_eq!(box_(Dim::D2, 1).nnz(), 9);
        assert_eq!(box_(Dim::D2, 2).nnz(), 25);
        assert_eq!(box_(Dim::D3, 1).nnz(), 27);
        assert_eq!(box_(Dim::D3, 3).nnz(), 343);
    }

    #[test]
    fn cross_nnz() {
        // star + 4 diagonal points per magnitude in 2-D
        assert_eq!(cross(Dim::D2, 1).nnz(), 9); // order-1 cross == order-1 box in 2-D
        assert_eq!(cross(Dim::D2, 2).nnz(), 17);
        // star + 8 per magnitude in 3-D
        assert_eq!(cross(Dim::D3, 1).nnz(), 15);
        assert_eq!(cross(Dim::D3, 2).nnz(), 29);
    }

    #[test]
    fn shapes_are_symmetric_and_ordered() {
        for shape in Shape::ALL {
            for dim in [Dim::D2, Dim::D3] {
                for r in 1..=4u8 {
                    let p = build(shape, dim, r);
                    assert!(p.is_symmetric(), "{shape:?} {dim} r{r}");
                    assert_eq!(p.order(), r);
                }
            }
        }
    }

    #[test]
    fn density_ordering_star_cross_box() {
        for dim in [Dim::D2, Dim::D3] {
            for r in 2..=4u8 {
                let s = star(dim, r).nnz();
                let c = cross(dim, r).nnz();
                let b = box_(dim, r).nnz();
                assert!(s < c && c < b, "{dim} r{r}: {s} {c} {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "order must be >= 1")]
    fn zero_order_panics() {
        star(Dim::D2, 0);
    }
}

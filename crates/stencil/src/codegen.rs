//! Pseudo-CUDA source emission for a stencil pattern.
//!
//! The simulator in `stencilmart-gpusim` never executes real kernels, but
//! the emitted source makes the modelled computation concrete: examples and
//! docs show users exactly which kernel each (stencil, optimization
//! combination) instance corresponds to. The emitted code follows the
//! structure of the kernels in the paper's references (naive, merged, and
//! 2.5-D streaming variants).

use crate::pattern::{Dim, StencilPattern};
use std::fmt::Write as _;

/// Kernel flavor to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelFlavor {
    /// One thread per output point, global loads only.
    Naive,
    /// Block merging: each thread computes `merge` adjacent outputs along
    /// the outermost non-streaming axis.
    BlockMerged {
        /// Points merged per thread.
        merge: usize,
    },
    /// 2.5-D streaming over the outermost axis with a shared-memory tile.
    Streaming {
        /// Use register prefetching for the next plane.
        prefetch: bool,
    },
}

/// Emit pseudo-CUDA for a pattern. The result is illustrative source text,
/// not compilable CUDA (grid constants are templated in).
pub fn emit(p: &StencilPattern, grid: usize, flavor: KernelFlavor) -> String {
    let mut s = String::new();
    let rank = p.dim().rank();
    let _ = writeln!(
        s,
        "// {}-point {} stencil, order {}, grid {}^{rank}",
        p.nnz(),
        p.dim(),
        p.order(),
        grid
    );
    let _ = writeln!(s, "#define N {grid}");
    match flavor {
        KernelFlavor::Naive => emit_naive(&mut s, p),
        KernelFlavor::BlockMerged { merge } => emit_merged(&mut s, p, merge),
        KernelFlavor::Streaming { prefetch } => emit_streaming(&mut s, p, prefetch),
    }
    s
}

fn idx_expr(p: &StencilPattern, off: &[i32; 3]) -> String {
    match p.dim() {
        Dim::D1 => format!("in[i{}]", signed(off[0])),
        Dim::D2 => format!("in[(j{})*N + i{}]", signed(off[1]), signed(off[0])),
        Dim::D3 => format!(
            "in[((k{})*N + j{})*N + i{}]",
            signed(off[2]),
            signed(off[1]),
            signed(off[0])
        ),
    }
}

fn signed(v: i32) -> String {
    match v.cmp(&0) {
        std::cmp::Ordering::Less => format!("{v}"),
        std::cmp::Ordering::Equal => String::new(),
        std::cmp::Ordering::Greater => format!("+{v}"),
    }
}

fn out_expr(p: &StencilPattern) -> &'static str {
    match p.dim() {
        Dim::D1 => "out[i]",
        Dim::D2 => "out[j*N + i]",
        Dim::D3 => "out[(k*N + j)*N + i]",
    }
}

fn thread_indices(s: &mut String, p: &StencilPattern) {
    let _ = writeln!(s, "  int i = blockIdx.x * blockDim.x + threadIdx.x;");
    if p.dim().rank() >= 2 {
        let _ = writeln!(s, "  int j = blockIdx.y * blockDim.y + threadIdx.y;");
    }
    if p.dim().rank() >= 3 {
        let _ = writeln!(s, "  int k = blockIdx.z * blockDim.z + threadIdx.z;");
    }
}

fn accumulate(s: &mut String, p: &StencilPattern, indent: &str) {
    let _ = writeln!(s, "{indent}double acc = 0.0;");
    for (t, off) in p.points().iter().enumerate() {
        let _ = writeln!(s, "{indent}acc += c{t} * {};", idx_expr(p, &off.c));
    }
    let _ = writeln!(s, "{indent}{} = acc;", out_expr(p));
}

fn emit_naive(s: &mut String, p: &StencilPattern) {
    let _ = writeln!(
        s,
        "__global__ void stencil_naive(const double* in, double* out) {{"
    );
    thread_indices(s, p);
    accumulate(s, p, "  ");
    let _ = writeln!(s, "}}");
}

fn emit_merged(s: &mut String, p: &StencilPattern, merge: usize) {
    let _ = writeln!(
        s,
        "__global__ void stencil_bm{merge}(const double* in, double* out) {{"
    );
    thread_indices(s, p);
    let outer = match p.dim() {
        Dim::D1 => "i",
        Dim::D2 => "j",
        Dim::D3 => "k",
    };
    let _ = writeln!(s, "  {outer} *= {merge};");
    let _ = writeln!(s, "  #pragma unroll");
    let _ = writeln!(s, "  for (int m = 0; m < {merge}; ++m, ++{outer}) {{");
    accumulate(s, p, "    ");
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
}

fn emit_streaming(s: &mut String, p: &StencilPattern, prefetch: bool) {
    let r = p.order();
    let _ = writeln!(
        s,
        "__global__ void stencil_stream{}(const double* in, double* out) {{",
        if prefetch { "_pf" } else { "" }
    );
    let _ = writeln!(s, "  // 2.5-D spatial blocking: tile planes stream over");
    let _ = writeln!(s, "  // the outermost axis; halo width {r}.");
    let _ = writeln!(
        s,
        "  __shared__ double tile[{}][TILE_Y + {}][TILE_X + {}];",
        2 * r + 1,
        2 * r,
        2 * r
    );
    thread_indices(s, p);
    if prefetch {
        let _ = writeln!(
            s,
            "  double next[{}]; // register prefetch buffer",
            2 * r + 1
        );
    }
    let outer = if p.dim() == Dim::D3 { "k" } else { "j" };
    let _ = writeln!(s, "  for (int {outer} = 0; {outer} < N; ++{outer}) {{");
    if prefetch {
        let _ = writeln!(s, "    // overlap: load plane {outer}+{r} into registers");
        let _ = writeln!(s, "    prefetch_plane(next, in, {outer} + {r});");
    }
    accumulate(s, p, "    ");
    let _ = writeln!(s, "    __syncthreads(); // rotate shared planes");
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Dim;
    use crate::shapes;

    #[test]
    fn naive_emits_one_fma_per_point() {
        let p = shapes::star(Dim::D2, 1);
        let src = emit(&p, 8192, KernelFlavor::Naive);
        assert_eq!(src.matches("acc +=").count(), 5);
        assert!(src.contains("stencil_naive"));
        assert!(src.contains("#define N 8192"));
    }

    #[test]
    fn merged_emits_unrolled_loop() {
        let p = shapes::star(Dim::D3, 1);
        let src = emit(&p, 512, KernelFlavor::BlockMerged { merge: 4 });
        assert!(src.contains("for (int m = 0; m < 4"));
        assert!(src.contains("k *= 4"));
    }

    #[test]
    fn streaming_emits_shared_tile_and_halo() {
        let p = shapes::box_(Dim::D3, 2);
        let src = emit(&p, 512, KernelFlavor::Streaming { prefetch: false });
        assert!(src.contains("__shared__ double tile[5][TILE_Y + 4][TILE_X + 4]"));
        assert!(src.contains("__syncthreads"));
        assert!(!src.contains("prefetch_plane"));
    }

    #[test]
    fn prefetch_adds_register_buffer() {
        let p = shapes::star(Dim::D3, 1);
        let src = emit(&p, 512, KernelFlavor::Streaming { prefetch: true });
        assert!(src.contains("prefetch_plane"));
        assert!(src.contains("double next[3]"));
    }

    #[test]
    fn offsets_appear_in_index_arithmetic() {
        let p = shapes::star(Dim::D2, 2);
        let src = emit(&p, 8192, KernelFlavor::Naive);
        assert!(src.contains("in[(j-2)*N + i]"));
        assert!(src.contains("in[(j)*N + i+2]") || src.contains("in[(j)*N + i+2]"));
    }
}

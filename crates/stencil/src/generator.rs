//! The random stencil generator of Algorithm 1.
//!
//! Real stencils process the *neighbors* of each point, so uniformly
//! sampling non-zeros in the tensor space would produce unrealistic
//! patterns. Algorithm 1 instead grows a pattern shell by shell: the
//! order-1 points are sampled among the center's adjacent cells, and the
//! order-`k` points are sampled among the adjacent cells of the selected
//! order-`k−1` points, discarding any candidate that falls back into shell
//! `k−1` or `k−2`.

use crate::pattern::{Dim, Offset, StencilPattern};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration for [`StencilGenerator`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Grid dimensionality of generated stencils.
    pub dim: Dim,
    /// Exact stencil order of generated stencils (every shell up to this
    /// order is non-empty).
    pub order: u8,
    /// Probability of keeping each candidate neighbor during shell
    /// sampling. Higher values yield denser (more box-like) stencils.
    pub keep_prob: f64,
    /// Force point symmetry: whenever an offset is kept, its mirror image
    /// is kept too. Classic stencils are symmetric; enabling this biases
    /// the corpus toward realistic patterns.
    pub symmetric: bool,
}

impl GeneratorConfig {
    /// A reasonable default for the given dimensionality and order.
    pub fn new(dim: Dim, order: u8) -> Self {
        GeneratorConfig {
            dim,
            order,
            keep_prob: 0.45,
            symmetric: true,
        }
    }
}

/// Random stencil generator implementing Algorithm 1 of the paper.
#[derive(Debug, Clone)]
pub struct StencilGenerator {
    rng: ChaCha8Rng,
}

impl StencilGenerator {
    /// Create a generator with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        StencilGenerator {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Generate one stencil under the given configuration.
    ///
    /// The generated pattern always has order exactly `cfg.order`: each
    /// shell receives at least one point (resampling until non-empty), so
    /// the growth process never stalls.
    pub fn generate(&mut self, cfg: &GeneratorConfig) -> StencilPattern {
        assert!(cfg.order >= 1, "stencil order must be >= 1");
        assert!(
            (0.0..=1.0).contains(&cfg.keep_prob),
            "keep_prob must lie in [0, 1]"
        );
        let rank = cfg.dim.rank();
        let mut np_list: Vec<Offset> = Vec::new();
        let mut prev_shell: Vec<Offset> = vec![Offset::center()];
        for order in 1..=cfg.order {
            let selected = self.sample_shell(&prev_shell, order, rank, cfg);
            np_list.extend_from_slice(&selected);
            prev_shell = selected;
        }
        StencilPattern::new(cfg.dim, np_list).expect("generated offsets respect rank")
    }

    /// Generate a corpus of `count` distinct stencils spanning orders
    /// `1..=max_order` (round-robin), de-duplicated by pattern equality.
    pub fn generate_corpus(
        &mut self,
        dim: Dim,
        max_order: u8,
        count: usize,
    ) -> Vec<StencilPattern> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::with_capacity(count);
        let mut i = 0usize;
        // Bounded retries: duplicates become likely only for tiny spaces.
        let mut attempts = 0usize;
        let max_attempts = count.saturating_mul(50).max(1000);
        while out.len() < count && attempts < max_attempts {
            attempts += 1;
            let order = (i % max_order as usize) as u8 + 1;
            let mut cfg = GeneratorConfig::new(dim, order);
            // Vary density and symmetry across the corpus.
            cfg.keep_prob = 0.25 + 0.5 * self.rng.gen::<f64>();
            cfg.symmetric = self.rng.gen_bool(0.8);
            let p = self.generate(&cfg);
            if seen.insert(p.clone()) {
                out.push(p);
                i += 1;
            }
        }
        out
    }

    /// Sample the order-`order` shell from the neighbors of the previously
    /// selected points, per Algorithm 1 lines 4–17.
    fn sample_shell(
        &mut self,
        prev: &[Offset],
        order: u8,
        rank: usize,
        cfg: &GeneratorConfig,
    ) -> Vec<Offset> {
        // Candidate pool: neighbors of the previous shell that lie exactly
        // in the new shell (deleting order-1 and order-2 backsliders, lines
        // 10–14, generalises to "keep only Chebyshev distance == order").
        let mut candidates: Vec<Offset> = prev
            .iter()
            .flat_map(|p| p.adjacent(rank))
            .filter(|o| o.order() == order)
            .collect();
        candidates.sort_unstable();
        candidates.dedup();

        let mut selected: Vec<Offset> = Vec::new();
        for &c in &candidates {
            if self.rng.gen_bool(cfg.keep_prob) {
                selected.push(c);
                if cfg.symmetric {
                    selected.push(c.negated());
                }
            }
        }
        // Shells must be non-empty so the stencil reaches the requested
        // order; fall back to one uniformly chosen candidate.
        if selected.is_empty() {
            let &c = candidates
                .choose(&mut self.rng)
                .expect("shell candidates are never empty");
            selected.push(c);
            if cfg.symmetric {
                selected.push(c.negated());
            }
        }
        selected.sort_unstable();
        selected.dedup();
        // Symmetric mirrors of order-k points are still order-k, but a
        // mirror may not be adjacent to the previous shell; that is fine —
        // it is adjacent to the mirrored previous shell, which the
        // symmetric pattern also contains.
        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_stencils_have_exact_order() {
        let mut g = StencilGenerator::new(7);
        for dim in [Dim::D2, Dim::D3] {
            for order in 1..=4u8 {
                let p = g.generate(&GeneratorConfig::new(dim, order));
                assert_eq!(p.order(), order, "{dim} order {order}");
                // Every shell up to the order is populated.
                for n in 1..=order {
                    assert!(p.shell_nnz(n) > 0, "{dim} order {order} shell {n}");
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GeneratorConfig::new(Dim::D2, 3);
        let a = StencilGenerator::new(42).generate(&cfg);
        let b = StencilGenerator::new(42).generate(&cfg);
        let c = StencilGenerator::new(43).generate(&cfg);
        assert_eq!(a, b);
        // Different seeds almost surely differ for order-3 2-D patterns.
        assert_ne!(a, c);
    }

    #[test]
    fn symmetric_config_produces_symmetric_patterns() {
        let mut g = StencilGenerator::new(5);
        for _ in 0..20 {
            let p = g.generate(&GeneratorConfig::new(Dim::D2, 3));
            assert!(p.is_symmetric());
        }
    }

    #[test]
    fn corpus_is_distinct_and_spans_orders() {
        let mut g = StencilGenerator::new(11);
        let corpus = g.generate_corpus(Dim::D2, 4, 60);
        assert_eq!(corpus.len(), 60);
        let set: std::collections::HashSet<_> = corpus.iter().collect();
        assert_eq!(set.len(), 60);
        for order in 1..=4u8 {
            assert!(
                corpus.iter().any(|p| p.order() == order),
                "order {order} missing"
            );
        }
    }

    #[test]
    fn dense_keep_prob_tends_toward_box() {
        let mut g = StencilGenerator::new(3);
        let mut cfg = GeneratorConfig::new(Dim::D2, 2);
        cfg.keep_prob = 1.0;
        let p = g.generate(&cfg);
        // keep_prob = 1 selects every reachable shell point; with
        // symmetric closure this is the full box.
        assert_eq!(p.nnz(), 25);
    }

    #[test]
    #[should_panic(expected = "keep_prob")]
    fn invalid_keep_prob_panics() {
        let mut g = StencilGenerator::new(1);
        let mut cfg = GeneratorConfig::new(Dim::D2, 1);
        cfg.keep_prob = 1.5;
        g.generate(&cfg);
    }
}

//! The candidate feature set of a stencil (paper Table II), plus an
//! extended set used by the ablation benches.
//!
//! Canonical (Table II) features for maximum order `N = 4`:
//!
//! | # | feature            | meaning                                       |
//! |---|--------------------|-----------------------------------------------|
//! | 1 | `order`            | maximum Chebyshev extent of non-zeros         |
//! | 2 | `nnz`              | number of non-zeros in the tensor             |
//! | 3 | `sparsity`         | density of non-zeros in the `(2N+1)^d` canvas |
//! | 4 | `nnz_order_n`      | non-zeros in the order-`n` shell, `n = 1..N`  |
//! | 5 | `nnz_ratio_order_n`| shell density: shell nnz / shell size         |
//!
//! The extended set adds distance statistics and axis/diagonal structure,
//! which the `ablation_repr` bench compares against the canonical set.

use crate::pattern::{shell_size, StencilPattern};
use crate::MAX_ORDER;
use serde::{Deserialize, Serialize};

/// Which feature set to extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Maximum stencil order the feature vector covers (shells `1..=N`).
    pub max_order: u8,
    /// Append the extended structural features.
    pub extended: bool,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            max_order: MAX_ORDER,
            extended: false,
        }
    }
}

impl FeatureConfig {
    /// The canonical Table II configuration.
    pub fn table2() -> Self {
        Self::default()
    }

    /// Canonical features plus extended structural features.
    pub fn extended() -> Self {
        FeatureConfig {
            max_order: MAX_ORDER,
            extended: true,
        }
    }

    /// Length of the produced feature vector.
    pub fn len(&self) -> usize {
        let base = 3 + 2 * self.max_order as usize;
        if self.extended {
            base + 7
        } else {
            base
        }
    }

    /// Whether the vector would be empty (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Human-readable names for each feature slot, matching [`extract`].
    pub fn names(&self) -> Vec<String> {
        let mut names = vec![
            "order".to_string(),
            "nnz".to_string(),
            "sparsity".to_string(),
        ];
        for n in 1..=self.max_order {
            names.push(format!("nnz_order_{n}"));
        }
        for n in 1..=self.max_order {
            names.push(format!("nnz_ratio_order_{n}"));
        }
        if self.extended {
            for extra in [
                "dim",
                "mean_euclid",
                "max_euclid",
                "mean_manhattan",
                "axis_frac",
                "diag_frac",
                "distinct_rows",
            ] {
                names.push(extra.to_string());
            }
        }
        names
    }
}

/// An extracted stencil feature vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    /// Feature values, ordered per [`FeatureConfig::names`].
    pub values: Vec<f64>,
}

impl FeatureVector {
    /// Values as `f32` for ML consumption.
    pub fn as_f32(&self) -> Vec<f32> {
        self.values.iter().map(|&v| v as f32).collect()
    }
}

/// Extract the feature vector of a pattern under the given configuration.
pub fn extract(p: &StencilPattern, cfg: &FeatureConfig) -> FeatureVector {
    let rank = p.dim().rank();
    let canvas = (2 * cfg.max_order as usize + 1).pow(rank as u32);
    let mut v = Vec::with_capacity(cfg.len());
    v.push(p.order() as f64);
    v.push(p.nnz() as f64);
    v.push(p.nnz() as f64 / canvas as f64);
    for n in 1..=cfg.max_order {
        v.push(p.shell_nnz(n) as f64);
    }
    for n in 1..=cfg.max_order {
        v.push(p.shell_nnz(n) as f64 / shell_size(rank, n) as f64);
    }
    if cfg.extended {
        let neighbors: Vec<_> = p.points().iter().filter(|o| !o.is_center()).collect();
        let cnt = neighbors.len().max(1) as f64;
        let mean_euclid = neighbors.iter().map(|o| o.euclid()).sum::<f64>() / cnt;
        let max_euclid = neighbors.iter().map(|o| o.euclid()).fold(0.0f64, f64::max);
        let mean_manhattan = neighbors.iter().map(|o| o.manhattan() as f64).sum::<f64>() / cnt;
        let axis_frac = neighbors.iter().filter(|o| o.on_axis()).count() as f64 / cnt;
        let diag_frac = neighbors.iter().filter(|o| o.on_diagonal(rank)).count() as f64 / cnt;
        v.push(rank as f64);
        v.push(mean_euclid);
        v.push(max_euclid);
        v.push(mean_manhattan);
        v.push(axis_frac);
        v.push(diag_frac);
        v.push(p.distinct_rows() as f64);
    }
    debug_assert_eq!(v.len(), cfg.len());
    FeatureVector { values: v }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Dim;
    use crate::shapes;

    #[test]
    fn table2_length_and_names_agree() {
        let cfg = FeatureConfig::table2();
        assert_eq!(cfg.len(), 11);
        assert_eq!(cfg.names().len(), 11);
        let ext = FeatureConfig::extended();
        assert_eq!(ext.len(), 18);
        assert_eq!(ext.names().len(), 18);
    }

    #[test]
    fn star2d1r_features() {
        let p = shapes::star(Dim::D2, 1);
        let f = extract(&p, &FeatureConfig::table2());
        assert_eq!(f.values[0], 1.0); // order
        assert_eq!(f.values[1], 5.0); // nnz
        assert!((f.values[2] - 5.0 / 81.0).abs() < 1e-12); // sparsity on 9x9 canvas
        assert_eq!(f.values[3], 4.0); // shell 1
        assert_eq!(f.values[4], 0.0); // shell 2 empty
        assert!((f.values[7] - 4.0 / 8.0).abs() < 1e-12); // shell-1 ratio
    }

    #[test]
    fn box_shell_ratios_are_one() {
        let p = shapes::box_(Dim::D3, 2);
        let f = extract(&p, &FeatureConfig::table2());
        // shells 1 and 2 fully populated
        assert!((f.values[7] - 1.0).abs() < 1e-12);
        assert!((f.values[8] - 1.0).abs() < 1e-12);
        assert_eq!(f.values[9], 0.0);
    }

    #[test]
    fn extended_features_distinguish_star_from_cross() {
        let cfg = FeatureConfig::extended();
        let s = extract(&shapes::star(Dim::D2, 2), &cfg);
        let c = extract(&shapes::cross(Dim::D2, 2), &cfg);
        let axis_idx = cfg.names().iter().position(|n| n == "axis_frac").unwrap();
        assert!(s.values[axis_idx] > c.values[axis_idx]);
    }

    #[test]
    fn as_f32_preserves_len() {
        let p = shapes::star(Dim::D2, 1);
        let f = extract(&p, &FeatureConfig::table2());
        assert_eq!(f.as_f32().len(), f.values.len());
    }
}

//! The binary sparse-tensor representation of a stencil (paper Fig. 6).
//!
//! A stencil of order `r` in `d` dimensions maps onto a `(2r+1)^d` tensor
//! whose non-zero entries are the accessed offsets (center included). For
//! CNN input the tensor is embedded centrally into a fixed canvas of side
//! `2·MAX_ORDER + 1` so that stencils of different orders share one input
//! shape.

use crate::pattern::{Dim, Offset, StencilPattern};
use crate::MAX_ORDER;
use serde::{Deserialize, Serialize};

/// A dense binary tensor holding a stencil access pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinaryTensor {
    dim: Dim,
    /// Half-width of the canvas: entries index offsets in `[-half, half]`.
    half: u8,
    /// Row-major data; length `side^rank` where `side = 2*half + 1`.
    data: Vec<f32>,
}

impl BinaryTensor {
    /// Assign a pattern into a tensor sized exactly to its order.
    pub fn from_pattern(p: &StencilPattern) -> BinaryTensor {
        Self::from_pattern_with_half(p, p.order().max(1))
    }

    /// Assign a pattern into the fixed `MAX_ORDER` canvas used for CNN
    /// inputs (9^d for the paper's maximum order of 4).
    pub fn canvas(p: &StencilPattern) -> BinaryTensor {
        Self::from_pattern_with_half(p, MAX_ORDER)
    }

    /// Assign a pattern into a canvas with the given half-width.
    ///
    /// # Panics
    /// Panics if the pattern's order exceeds `half`.
    pub fn from_pattern_with_half(p: &StencilPattern, half: u8) -> BinaryTensor {
        assert!(
            p.order() <= half,
            "pattern order {} exceeds canvas half-width {half}",
            p.order()
        );
        let rank = p.dim().rank();
        let side = 2 * half as usize + 1;
        let mut data = vec![0.0f32; side.pow(rank as u32)];
        for o in p.points() {
            let idx = Self::index_of(o, half, rank, side);
            data[idx] = 1.0;
        }
        BinaryTensor {
            dim: p.dim(),
            half,
            data,
        }
    }

    fn index_of(o: &Offset, half: u8, rank: usize, side: usize) -> usize {
        let mut idx = 0usize;
        // Outermost axis varies slowest; axis 0 is unit stride.
        for axis in (0..rank).rev() {
            let coord = (o.c[axis] + half as i32) as usize;
            idx = idx * side + coord;
        }
        idx
    }

    /// Side length of the canvas along each axis.
    #[inline]
    pub fn side(&self) -> usize {
        2 * self.half as usize + 1
    }

    /// Canvas half-width.
    #[inline]
    pub fn half(&self) -> u8 {
        self.half
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> Dim {
        self.dim
    }

    /// Tensor shape, e.g. `[9, 9]` or `[9, 9, 9]`.
    pub fn shape(&self) -> Vec<usize> {
        vec![self.side(); self.dim.rank()]
    }

    /// Flat row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Density of non-zeros in the canvas.
    pub fn sparsity(&self) -> f64 {
        self.nnz() as f64 / self.data.len() as f64
    }

    /// Value at an offset (0.0 outside the canvas).
    pub fn at(&self, o: &Offset) -> f32 {
        let rank = self.dim.rank();
        if o.order() > self.half || o.c[rank..].iter().any(|&v| v != 0) {
            return 0.0;
        }
        self.data[Self::index_of(o, self.half, rank, self.side())]
    }

    /// Recover the pattern encoded by this tensor.
    pub fn to_pattern(&self) -> StencilPattern {
        let rank = self.dim.rank();
        let side = self.side();
        let half = self.half as i32;
        let mut pts = Vec::new();
        for (flat, &v) in self.data.iter().enumerate() {
            if v == 0.0 {
                continue;
            }
            let mut rem = flat;
            let mut c = [0i32; 3];
            for coord in c.iter_mut().take(rank) {
                *coord = (rem % side) as i32 - half;
                rem /= side;
            }
            pts.push(Offset { c });
        }
        StencilPattern::new(self.dim, pts).expect("tensor offsets respect rank")
    }

    /// Render a 2-D tensor as ASCII art (`#` = accessed, `.` = not).
    /// Returns `None` for non-2-D tensors.
    pub fn ascii(&self) -> Option<String> {
        if self.dim != Dim::D2 {
            return None;
        }
        let side = self.side();
        let mut s = String::with_capacity((side + 1) * side);
        for y in (0..side).rev() {
            for x in 0..side {
                let v = self.data[y * side + x];
                s.push(if v != 0.0 { '#' } else { '.' });
            }
            s.push('\n');
        }
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;

    #[test]
    fn canvas_shape_matches_paper() {
        let p = shapes::star(Dim::D2, 2);
        let t = BinaryTensor::canvas(&p);
        assert_eq!(t.shape(), vec![9, 9]);
        let p3 = shapes::star(Dim::D3, 1);
        let t3 = BinaryTensor::canvas(&p3);
        assert_eq!(t3.shape(), vec![9, 9, 9]);
    }

    #[test]
    fn nnz_matches_pattern() {
        for dim in [Dim::D2, Dim::D3] {
            for r in 1..=4u8 {
                let p = shapes::box_(dim, r);
                let t = BinaryTensor::canvas(&p);
                assert_eq!(t.nnz(), p.nnz());
            }
        }
    }

    #[test]
    fn tight_tensor_for_full_box_is_all_ones() {
        let p = shapes::box_(Dim::D2, 3);
        let t = BinaryTensor::from_pattern(&p);
        assert_eq!(t.side(), 7);
        assert!((t.sparsity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_pattern_tensor_pattern() {
        for shape in shapes::Shape::ALL {
            for dim in [Dim::D2, Dim::D3] {
                for r in 1..=3u8 {
                    let p = shapes::build(shape, dim, r);
                    let t = BinaryTensor::canvas(&p);
                    assert_eq!(t.to_pattern(), p, "{shape:?} {dim} r{r}");
                }
            }
        }
    }

    #[test]
    fn at_reads_offsets() {
        let p = shapes::star(Dim::D2, 1);
        let t = BinaryTensor::canvas(&p);
        assert_eq!(t.at(&Offset::center()), 1.0);
        assert_eq!(t.at(&Offset::d2(0, 1)), 1.0);
        assert_eq!(t.at(&Offset::d2(1, 1)), 0.0);
        assert_eq!(t.at(&Offset::d2(9, 0)), 0.0); // outside canvas
    }

    #[test]
    #[should_panic(expected = "exceeds canvas half-width")]
    fn oversized_pattern_panics() {
        let p = shapes::star(Dim::D2, 4);
        BinaryTensor::from_pattern_with_half(&p, 2);
    }

    #[test]
    fn ascii_renders_star() {
        let p = shapes::star(Dim::D2, 1);
        let t = BinaryTensor::from_pattern(&p);
        let art = t.ascii().unwrap();
        assert_eq!(art, ".#.\n###\n.#.\n");
        assert!(BinaryTensor::canvas(&shapes::star(Dim::D3, 1))
            .ascii()
            .is_none());
    }
}
